// Tests for parity scrubbing: detection and repair of silent parity
// corruption (bit rot, lost updates) by auditing parity against the data
// columns. The whole suite is parameterized over the parity code (RS and
// LRC): scrubbing is scheme-agnostic and must behave identically.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lhrs/lhrs_file.h"

namespace lhrs {
namespace {

class ScrubTest : public ::testing::TestWithParam<const char*> {
 protected:
  LhrsFile::Options Opts(uint32_t m = 4, uint32_t k = 2) {
    LhrsFile::Options opts;
    opts.file.bucket_capacity = 10;
    opts.group_size = m;
    opts.policy.base_k = k;
    auto spec = parity::CodeSpec::Parse(GetParam());
    EXPECT_TRUE(spec.ok()) << spec.status();
    if (spec.ok()) opts.code = *spec;
    return opts;
  }
};

void Populate(LhrsFile& file, int n, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    (void)file.Insert(rng.Next64(), rng.RandomBytes(1 + rng.Uniform(32)));
  }
}

TEST_P(ScrubTest, CleanFileHasNoMismatches) {
  LhrsFile file(Opts());
  Populate(file, 200, 61);
  const auto report = file.Scrub();
  EXPECT_EQ(report.groups_scrubbed, file.group_count());
  EXPECT_GT(report.record_groups_checked, 0u);
  EXPECT_EQ(report.mismatched_parity_records, 0u);
  EXPECT_EQ(report.parity_columns_repaired, 0u);
}

TEST_P(ScrubTest, DetectsFlippedParityBits) {
  LhrsFile file(Opts());
  Populate(file, 150, 62);
  // Silent bit rot in one parity record of group 0, column 1.
  auto* bucket = file.parity_bucket(0, 1);
  ASSERT_GT(bucket->parity_record_count(), 0u);
  const Rank rank = bucket->parity_records().begin()->first;
  ParityRecord* record = bucket->MutableParityRecordForTest(rank);
  ASSERT_NE(record, nullptr);
  ASSERT_FALSE(record->parity.empty());
  record->parity.MutableData()[0] ^= 0xFF;

  const auto report = file.Scrub(/*repair=*/false);
  EXPECT_EQ(report.mismatched_parity_records, 1u);
  EXPECT_EQ(report.parity_columns_repaired, 0u);  // Detection only.
  EXPECT_FALSE(file.VerifyParityInvariants().ok());
}

TEST_P(ScrubTest, DetectsCorruptedMetadata) {
  LhrsFile file(Opts());
  Populate(file, 150, 63);
  auto* bucket = file.parity_bucket(0, 0);
  const Rank rank = bucket->parity_records().begin()->first;
  ParityRecord* record = bucket->MutableParityRecordForTest(rank);
  ASSERT_NE(record, nullptr);
  record->lengths[0] += 7;  // Length drift.
  const auto report = file.Scrub();
  EXPECT_GE(report.mismatched_parity_records, 1u);
}

TEST_P(ScrubTest, RepairRestoresCorruptedColumns) {
  LhrsFile file(Opts());
  Populate(file, 200, 64);
  // Corrupt several records across two parity columns of group 0.
  for (uint32_t j : {0u, 1u}) {
    auto* bucket = file.parity_bucket(0, j);
    int corrupted = 0;
    for (const auto& [rank, unused] : bucket->parity_records()) {
      ParityRecord* record = bucket->MutableParityRecordForTest(rank);
      if (!record->parity.empty()) {
        record->parity.MutableData()[record->parity.size() - 1] ^= 0x5A;
        if (++corrupted == 3) break;
      }
    }
  }
  ASSERT_FALSE(file.VerifyParityInvariants().ok());

  const auto report = file.Scrub(/*repair=*/true);
  EXPECT_GE(report.mismatched_parity_records, 2u);
  EXPECT_EQ(report.parity_columns_repaired, 2u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok()) << "after repair";

  // Idempotence: a second scrub is clean.
  const auto again = file.Scrub();
  EXPECT_EQ(again.mismatched_parity_records, 0u);
}

TEST_P(ScrubTest, DetectsDroppedParityRecord) {
  LhrsFile file(Opts());
  Populate(file, 150, 65);
  auto* bucket = file.parity_bucket(0, 1);
  ASSERT_GT(bucket->parity_record_count(), 1u);
  // Simulate a lost record: blank one out via the test hook by zeroing its
  // content is not enough (keys remain); instead corrupt all its keys'
  // metadata so the audit flags it.
  const Rank rank = bucket->parity_records().rbegin()->first;
  ParityRecord* record = bucket->MutableParityRecordForTest(rank);
  for (auto& key : record->keys) {
    if (key.has_value()) *key ^= 1;  // Wrong member keys.
  }
  const auto report = file.Scrub(/*repair=*/true);
  EXPECT_GE(report.mismatched_parity_records, 1u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST_P(ScrubTest, RepairedFileStillRecoversFromFailures) {
  LhrsFile file(Opts());
  Rng rng(66);
  std::vector<Key> keys;
  for (int i = 0; i < 200; ++i) {
    const Key k = rng.Next64();
    if (file.Insert(k, rng.RandomBytes(24)).ok()) keys.push_back(k);
  }
  auto* bucket = file.parity_bucket(0, 0);
  const Rank rank = bucket->parity_records().begin()->first;
  bucket->MutableParityRecordForTest(rank)->parity.MutableData()[0] ^= 0x42;
  (void)file.Scrub(/*repair=*/true);

  // Buckets 0 and 2 sit in distinct lrc2 local groups, so the double
  // failure is recoverable under both the MDS RS code and the LRC.
  const NodeId d1 = file.CrashDataBucket(0);
  file.CrashDataBucket(2);
  file.DetectAndRecover(d1);
  EXPECT_EQ(file.rs_coordinator().groups_lost(), 0u);
  for (Key k : keys) EXPECT_TRUE(file.Search(k).ok());
}

INSTANTIATE_TEST_SUITE_P(Codes, ScrubTest, ::testing::Values("rs", "lrc2"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace lhrs
