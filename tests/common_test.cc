// Unit tests for the common kernel: Status/Result, byte utilities, RNG.

#include <memory>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace lhrs {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::DataLoss("x").IsDataLoss());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  const Status s = Status::NotFound("no such key");
  EXPECT_EQ(s.ToString(), "NotFound: no such key");
  EXPECT_EQ(s.message(), "no such key");
}

TEST(StatusTest, EqualityAndStreaming) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  std::ostringstream os;
  os << Status::DataLoss("gone");
  EXPECT_EQ(os.str(), "DataLoss: gone");
}

Status Fails() { return Status::Internal("boom"); }
Status Chained() {
  LHRS_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained().IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();  // Programming error, caught.
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}
Result<int> Quarter(int x) {
  LHRS_ASSIGN_OR_RETURN(int h, Half(x));
  LHRS_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturn) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 3 is odd.
  EXPECT_TRUE(Quarter(7).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(BytesTest, FromStringAndHex) {
  const Bytes b = BytesFromString("Hi");
  EXPECT_EQ(b, (Bytes{'H', 'i'}));
  EXPECT_EQ(ToHex(Bytes{0xDE, 0xAD, 0x00}), "dead00");
  EXPECT_EQ(ToHex(Bytes{}), "");
}

TEST(BytesTest, XorAssignPaddedGrowsDestination) {
  Bytes dst = {0x01};
  XorAssignPadded(dst, Bytes{0x01, 0xFF, 0x0F});
  EXPECT_EQ(dst, (Bytes{0x00, 0xFF, 0x0F}));
  // XOR is its own inverse under the padded convention.
  XorAssignPadded(dst, Bytes{0x01, 0xFF, 0x0F});
  EXPECT_EQ(dst, (Bytes{0x01, 0x00, 0x00}));
}

TEST(BytesTest, XorAssignPaddedEqualLengths) {
  Bytes dst = {0xF0, 0x0F, 0xAA};
  XorAssignPadded(dst, Bytes{0xFF, 0xFF, 0xAA});
  EXPECT_EQ(dst, (Bytes{0x0F, 0xF0, 0x00}));
}

TEST(BytesTest, XorAssignPaddedLongerDestinationKeepsTail) {
  // src is zero-extended to dst's length: the tail is untouched.
  Bytes dst = {0x01, 0x02, 0x03, 0x04};
  XorAssignPadded(dst, Bytes{0xFF});
  EXPECT_EQ(dst, (Bytes{0xFE, 0x02, 0x03, 0x04}));
}

TEST(BytesTest, XorAssignPaddedShorterDestinationGrows) {
  Bytes dst = {0x10, 0x20};
  XorAssignPadded(dst, Bytes{0x01, 0x02, 0x30, 0x40});
  // Overlap XORed, src's tail appended (XOR against the implicit zero pad).
  EXPECT_EQ(dst, (Bytes{0x11, 0x22, 0x30, 0x40}));
}

TEST(BytesTest, XorAssignPaddedEmptySourceIsNoop) {
  Bytes dst = {0x11, 0x22};
  XorAssignPadded(dst, Bytes{});
  EXPECT_EQ(dst, (Bytes{0x11, 0x22}));
}

TEST(BytesTest, WordWiseXorMatchesByteReference) {
  // The word-wise kernel must agree with the pinned byte loop across
  // sizes that exercise the unrolled body, the word tail, and the scalar
  // tail — and across unaligned starting offsets.
  Rng rng(0xC0FFEE);
  for (size_t n : {0u, 1u, 7u, 8u, 31u, 32u, 33u, 100u, 4096u, 4101u}) {
    for (size_t offset : {0u, 1u, 3u}) {
      Bytes src(n + offset), a(n + offset), b(n + offset);
      for (auto& x : src) x = static_cast<uint8_t>(rng.Next64());
      for (size_t i = 0; i < a.size(); ++i) {
        a[i] = static_cast<uint8_t>(rng.Next64());
        b[i] = a[i];
      }
      XorBuffer(a.data() + offset, src.data() + offset, n);
      XorBufferByteReference(b.data() + offset, src.data() + offset, n);
      EXPECT_EQ(a, b) << "n=" << n << " offset=" << offset;
    }
  }
}

TEST(BytesTest, PadToAndAllZero) {
  EXPECT_EQ(PadTo(Bytes{1, 2}, 4), (Bytes{1, 2, 0, 0}));
  EXPECT_EQ(PadTo(Bytes{1, 2, 3}, 2), (Bytes{1, 2}));
  EXPECT_TRUE(AllZero(Bytes{0, 0, 0}));
  EXPECT_TRUE(AllZero(Bytes{}));
  EXPECT_FALSE(AllZero(Bytes{0, 1}));
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(12345), b(12345), c(54321);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
  bool differs = false;
  Rng a2(12345);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next64() != c.Next64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const uint64_t v = rng.UniformIn(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, FlipIsRoughlyFair) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.Flip(0.25) ? 1 : 0;
  EXPECT_NEAR(heads / 100000.0, 0.25, 0.01);
}

TEST(RngTest, RandomBytesLengthAndVariety) {
  Rng rng(13);
  const Bytes b = rng.RandomBytes(1000);
  ASSERT_EQ(b.size(), 1000u);
  std::set<uint8_t> distinct(b.begin(), b.end());
  EXPECT_GT(distinct.size(), 100u);
}

}  // namespace
}  // namespace lhrs
