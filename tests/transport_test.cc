// SocketTransport tests over real loopback sockets: basic delivery, the
// TCP bulk path, and — the chaos-hardening contract — that transport-level
// loss and duplication injected by the lossy shim are fully absorbed by
// bounded retransmit and receiver-side sequence dedup, so protocol code
// sees each message exactly once (or a delivery failure).

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lhstar/messages.h"
#include "transport/socket_transport.h"
#include "transport/wire.h"

namespace lhrs::transport {
namespace {

std::unique_ptr<OpRequestMsg> MakeRequest(uint64_t op_id, size_t value_size) {
  auto msg = std::make_unique<OpRequestMsg>();
  msg->op = OpType::kInsert;
  msg->op_id = op_id;
  msg->client = 100;
  msg->key = op_id * 7;
  msg->value = BufferView(Bytes(value_size, uint8_t{0xAB}));
  return msg;
}

/// Two transports in one process, ranks 0 and 1, talking over loopback.
/// Node ids: even -> rank 0, odd -> rank 1.
class TransportPairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterAllWireCodecs();
    for (int rank = 0; rank < 2; ++rank) {
      auto& t = transports_[rank];
      t = std::make_unique<SocketTransport>(options_);
      t->set_my_rank(rank);
      t->SetNodeRank([](NodeId id) { return static_cast<int>(id) % 2; });
      t->SetDeliverFn([this, rank](NodeId from, NodeId to,
                                   std::unique_ptr<MessageBody> body) {
        received_[rank].push_back(
            {from, to, static_cast<const OpRequestMsg&>(*body).op_id});
        return accept_;
      });
      t->SetFailFn([this, rank](NodeId from, NodeId to,
                                std::unique_ptr<MessageBody> body) {
        failed_[rank].push_back(
            {from, to,
             body == nullptr
                 ? uint64_t{0}
                 : static_cast<const OpRequestMsg&>(*body).op_id});
      });
      ASSERT_TRUE(t->Open().ok());
    }
    transports_[0]->SetPeer(1, transports_[1]->local());
    transports_[1]->SetPeer(0, transports_[0]->local());
  }

  /// Pumps both transports until `done` or ~deadline_ms of wall clock.
  bool PumpUntil(const std::function<bool()>& done, int deadline_ms = 5000) {
    const uint64_t deadline =
        SocketTransport::MonotonicMicros() +
        static_cast<uint64_t>(deadline_ms) * 1000;
    while (SocketTransport::MonotonicMicros() < deadline) {
      transports_[0]->Pump(1);
      transports_[1]->Pump(1);
      if (done()) return true;
    }
    return done();
  }

  struct Received {
    NodeId from;
    NodeId to;
    uint64_t op_id;
  };

  SocketTransportOptions options_;
  bool accept_ = true;
  std::unique_ptr<SocketTransport> transports_[2];
  std::vector<Received> received_[2];
  std::vector<Received> failed_[2];
};

TEST_F(TransportPairTest, DeliversSmallMessageOverUdp) {
  transports_[0]->Send(2, 3, MakeRequest(1, 64));
  ASSERT_TRUE(PumpUntil([&] { return received_[1].size() == 1; }));
  EXPECT_EQ(received_[1][0].from, 2);
  EXPECT_EQ(received_[1][0].to, 3);
  EXPECT_EQ(received_[1][0].op_id, 1u);
  EXPECT_GE(transports_[0]->stats().udp_datagrams_sent, 1u);
  // Sender quiesces once the ack arrives.
  ASSERT_TRUE(PumpUntil([&] { return transports_[0]->Quiescent(); }));
}

TEST_F(TransportPairTest, LargeMessageTravelsOverTcp) {
  const size_t bulk = options_.udp_payload_limit + 4096;
  transports_[0]->Send(2, 3, MakeRequest(2, bulk));
  ASSERT_TRUE(PumpUntil([&] { return received_[1].size() == 1; }));
  EXPECT_EQ(received_[1][0].op_id, 2u);
  EXPECT_GE(transports_[0]->stats().tcp_frames_sent, 1u);
  EXPECT_EQ(transports_[0]->stats().udp_datagrams_sent, 0u);
  ASSERT_TRUE(PumpUntil([&] { return transports_[0]->Quiescent(); }));
}

TEST_F(TransportPairTest, LoopbackShortcutDeliversLocally) {
  transports_[0]->Send(2, 4, MakeRequest(3, 16));  // Both ids on rank 0.
  ASSERT_EQ(received_[0].size(), 1u);  // Synchronous, no pump needed.
  EXPECT_EQ(received_[0][0].op_id, 3u);
  EXPECT_EQ(transports_[0]->stats().udp_datagrams_sent, 0u);
}

TEST_F(TransportPairTest, RetransmitRecoversFromDroppedDatagrams) {
  // Drop the first two transmissions of every data frame; the third
  // attempt goes through. Acks pass untouched.
  int drops = 0;
  transports_[0]->SetLossShim([&](bool is_ack, uint64_t) {
    LossAction action;
    if (!is_ack && drops < 2) {
      action.drop = true;
      ++drops;
    }
    return action;
  });
  transports_[0]->Send(2, 3, MakeRequest(4, 64));
  ASSERT_TRUE(PumpUntil([&] { return received_[1].size() == 1; }));
  EXPECT_EQ(received_[1][0].op_id, 4u);
  EXPECT_GE(transports_[0]->stats().retransmits, 2u);
  EXPECT_TRUE(failed_[0].empty());
  ASSERT_TRUE(PumpUntil([&] { return transports_[0]->Quiescent(); }));
}

TEST_F(TransportPairTest, ReceiverDedupSuppressesDuplicatedDatagrams) {
  // Every data frame is sent 3 extra times; the receiver must surface the
  // message exactly once and re-ack the duplicates.
  transports_[0]->SetLossShim([&](bool is_ack, uint64_t) {
    LossAction action;
    if (!is_ack) action.duplicates = 3;
    return action;
  });
  transports_[0]->Send(2, 3, MakeRequest(5, 64));
  ASSERT_TRUE(PumpUntil([&] {
    return transports_[1]->stats().dup_suppressed >= 1;
  }));
  EXPECT_EQ(received_[1].size(), 1u);
  ASSERT_TRUE(PumpUntil([&] { return transports_[0]->Quiescent(); }));
  EXPECT_EQ(received_[1].size(), 1u);
}

TEST_F(TransportPairTest, DroppedAcksCauseResendButSingleDelivery) {
  // The receiver's acks all vanish: the sender retransmits until its
  // attempt budget runs out, the receiver dedups every retransmission —
  // exactly-once delivery to protocol code despite at-least-once wire
  // behavior, then a delivery-failure signal for the lost ack.
  transports_[1]->SetLossShim([&](bool is_ack, uint64_t) {
    LossAction action;
    action.drop = is_ack;
    return action;
  });
  transports_[0]->Send(2, 3, MakeRequest(6, 64));
  ASSERT_TRUE(PumpUntil([&] { return !failed_[0].empty(); }, 15000));
  EXPECT_EQ(received_[1].size(), 1u);  // Delivered once despite resends.
  EXPECT_GE(transports_[1]->stats().dup_suppressed,
            options_.max_attempts - 1);
  EXPECT_EQ(failed_[0][0].op_id, 6u);  // Body handed back on failure.
}

TEST_F(TransportPairTest, ExhaustedRetransmitsFailWithBodyReturned) {
  // Total blackout of data frames: after max_attempts the send must fail
  // and hand the original body back for HandleDeliveryFailure.
  transports_[0]->SetLossShim([&](bool is_ack, uint64_t) {
    LossAction action;
    action.drop = !is_ack;
    return action;
  });
  transports_[0]->Send(2, 3, MakeRequest(7, 64));
  ASSERT_TRUE(PumpUntil([&] { return !failed_[0].empty(); }, 15000));
  EXPECT_EQ(failed_[0][0].op_id, 7u);
  EXPECT_TRUE(received_[1].empty());
  EXPECT_EQ(transports_[0]->stats().send_failures, 1u);
  EXPECT_TRUE(transports_[0]->Quiescent());
}

TEST_F(TransportPairTest, UnroutableDestinationFailsImmediately) {
  transports_[0]->SetNodeRank([](NodeId) { return -1; });
  transports_[0]->Send(2, 99, MakeRequest(8, 16));
  ASSERT_EQ(failed_[0].size(), 1u);
  EXPECT_EQ(failed_[0][0].op_id, 8u);
}

TEST_F(TransportPairTest, RejectedDeliveryIsNotAcked) {
  // The receiver's deliver callback refuses (crashed destination): no ack
  // goes out, the sender retransmits and eventually reports failure.
  accept_ = false;
  transports_[0]->Send(2, 3, MakeRequest(9, 64));
  ASSERT_TRUE(PumpUntil([&] { return !failed_[0].empty(); }, 15000));
  EXPECT_EQ(failed_[0][0].op_id, 9u);
  EXPECT_GE(transports_[0]->stats().retransmits,
            options_.max_attempts - 1);
}

TEST_F(TransportPairTest, ManyMessagesUnderLossAllDeliverExactlyOnce) {
  // Deterministic mixed loss: every 3rd data frame dropped once, every
  // 4th duplicated. 50 messages must each arrive exactly once.
  uint64_t counter = 0;
  transports_[0]->SetLossShim([&](bool is_ack, uint64_t) {
    LossAction action;
    if (is_ack) return action;
    ++counter;
    if (counter % 3 == 0) action.drop = true;
    if (counter % 4 == 0) action.duplicates = 1;
    return action;
  });
  for (uint64_t i = 0; i < 50; ++i) {
    transports_[0]->Send(2, 3, MakeRequest(100 + i, 32));
  }
  ASSERT_TRUE(PumpUntil(
      [&] {
        return received_[1].size() >= 50 && transports_[0]->Quiescent();
      },
      15000));
  EXPECT_EQ(received_[1].size(), 50u);
  std::set<uint64_t> ids;
  for (const auto& r : received_[1]) ids.insert(r.op_id);
  EXPECT_EQ(ids.size(), 50u) << "duplicate delivery leaked to protocol";
  EXPECT_TRUE(failed_[0].empty());
}

}  // namespace
}  // namespace lhrs::transport
