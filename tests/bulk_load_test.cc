// Bulk-load tests: the batched insert path against the scan oracle, stale
// image re-grouping, duplicate accounting, the group-commit message
// saving, and the recovery-under-fire drill — a k-node group crash in the
// middle of a 100k-record load, for the RS and LRC codes alike.

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/chaos.h"
#include "common/rng.h"
#include "lhrs/lhrs_file.h"
#include "telemetry/metrics.h"
#include "workload/bulk_load.h"

namespace lhrs {
namespace {

using chaos::FaultPlan;
using workload::BulkLoad;
using workload::BulkLoadOptions;

LhrsFile::Options Opts(uint32_t m, uint32_t k, size_t capacity = 8) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = capacity;
  opts.group_size = m;
  opts.policy.base_k = k;
  return opts;
}

std::vector<WireRecord> MakeRecords(size_t n, uint64_t seed,
                                    size_t value_bytes = 16) {
  Rng rng(seed);
  std::set<Key> seen;
  std::vector<WireRecord> records;
  while (records.size() < n) {
    const Key k = rng.Next64();
    if (!seen.insert(k).second) continue;
    records.push_back(WireRecord{k, 0, rng.RandomBytes(value_bytes)});
  }
  return records;
}

TEST(BulkLoadTest, MatchesScanOracle) {
  LhrsFile file(Opts(4, 1));
  const auto records = MakeRecords(600, 41);
  BulkLoadOptions opts;
  opts.batch_size = 32;
  opts.window = 2;
  const auto report = BulkLoad(file, records, opts);

  EXPECT_EQ(report.applied, records.size());
  EXPECT_EQ(report.exists, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_GT(report.RecordsPerSimSecond(), 0.0);

  auto scanned = file.Scan();
  ASSERT_TRUE(scanned.ok());
  ASSERT_EQ(scanned->size(), records.size());
  std::set<Key> expected;
  for (const WireRecord& rec : records) expected.insert(rec.key);
  for (const WireRecord& rec : *scanned) {
    EXPECT_TRUE(expected.contains(rec.key));
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(BulkLoadTest, StaleImageRecordsAreRegroupedNotLost) {
  // Grow the file through session 0 first, then load with a second,
  // brand-new session whose image still says "one bucket": its batches
  // come back with rejected records + an IAM, get re-grouped under the
  // adjusted image and land — nothing lost, nothing duplicated.
  LhrsFile file(Opts(4, 1));
  const auto grow = MakeRecords(300, 43);
  for (const WireRecord& rec : grow) {
    ASSERT_TRUE(file.Insert(rec.key, rec.value.ToBytes()).ok());
  }
  ASSERT_GT(file.bucket_count(), 8u);

  const auto records = MakeRecords(300, 47);
  BulkLoadOptions opts;
  opts.batch_size = 32;
  opts.sessions = 2;  // Session 1 is created fresh by the loader.
  const auto report = BulkLoad(file, records, opts);

  EXPECT_EQ(report.applied, records.size());
  EXPECT_EQ(report.failed, 0u);
  EXPECT_GT(file.client(1).iam_count(), 0u)
      << "fresh session never learned the file had grown";
  auto scanned = file.Scan();
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned->size(), grow.size() + records.size());
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(BulkLoadTest, DuplicateKeysReportExists) {
  LhrsFile file(Opts(4, 1));
  const auto records = MakeRecords(200, 53);
  const auto first = BulkLoad(file, records, BulkLoadOptions{});
  EXPECT_EQ(first.applied, records.size());

  const auto second = BulkLoad(file, records, BulkLoadOptions{});
  EXPECT_EQ(second.applied, 0u);
  EXPECT_EQ(second.exists, records.size());
  EXPECT_EQ(second.failed, 0u);
  EXPECT_EQ(file.GetStorageStats().record_count, records.size());
}

TEST(BulkLoadTest, GroupCommitCutsMessageBill) {
  const auto records = MakeRecords(800, 59);

  LhrsFile per_record(Opts(4, 1, /*capacity=*/16));
  for (const WireRecord& rec : records) {
    ASSERT_TRUE(per_record.Insert(rec.key, rec.value.ToBytes()).ok());
  }
  const uint64_t per_record_msgs =
      per_record.network().stats().total_messages();

  LhrsFile batched(Opts(4, 1, /*capacity=*/16));
  BulkLoadOptions opts;
  opts.batch_size = 64;
  const auto report = BulkLoad(batched, records, opts);
  const uint64_t batched_msgs = batched.network().stats().total_messages();

  EXPECT_EQ(report.applied, records.size());
  EXPECT_LT(batched_msgs, per_record_msgs)
      << "batching must beat the per-record message bill";
  EXPECT_EQ(batched.GetStorageStats().record_count, records.size());
  EXPECT_TRUE(batched.VerifyParityInvariants().ok());
}

TEST(BulkLoadTest, EmptyInputIsANoOp) {
  LhrsFile file(Opts(4, 1));
  const auto report = BulkLoad(file, {}, BulkLoadOptions{});
  EXPECT_EQ(report.records, 0u);
  EXPECT_EQ(report.batches, 0u);
  EXPECT_EQ(report.applied, 0u);
}

// --- Recovery under fire ---------------------------------------------------

class RecoveryUnderFireTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RecoveryUnderFireTest, GroupCrashMidLoadLosesNothing) {
  // The acceptance drill: k members of bucket group 0 die while a
  // 100k-record bulk load is in flight. Batches aimed at the dead servers
  // bounce into per-record coordinator fallback, recovery rebuilds the
  // columns from the surviving group members, and the load finishes with
  // zero lost and zero duplicated records — with the repair traffic
  // visible in the recovery.repair_bytes_moved counter.
  LhrsFile::Options opts = Opts(4, 2, /*capacity=*/2048);
  auto spec = parity::CodeSpec::Parse(GetParam());
  ASSERT_TRUE(spec.ok());
  opts.code = *spec;
  LhrsFile file(opts);
  file.network().EnableTelemetry({.trace_messages = false});

  const size_t kRecords = 100000;
  const auto records = MakeRecords(kRecords, 61, /*value_bytes=*/8);

  FaultPlan plan;
  plan.seed = 17;
  plan.CrashGroupAt(5000, 0, 2);
  file.AttachChaos(std::move(plan));

  BulkLoadOptions load_opts;
  load_opts.batch_size = 512;
  load_opts.window = 2;
  const auto report = BulkLoad(file, records, load_opts);
  file.PlayOutChaos();
  file.DetachChaos();
  file.RecoverAll();
  file.network().RunUntilIdle();

  EXPECT_EQ(report.failed, 0u);
  // Crash-after-apply replays surface as `exists` (at-least-once), never
  // as loss or duplication: every record is resident exactly once.
  EXPECT_EQ(report.applied + report.exists, kRecords);
  EXPECT_EQ(file.GetStorageStats().record_count, kRecords);

  // Spot-check a deterministic sample end to end.
  Rng sample(67);
  for (int i = 0; i < 500; ++i) {
    const WireRecord& rec = records[sample.Uniform(records.size())];
    auto got = file.Search(rec.key);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(BufferView(*got), rec.value);
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok());

  const telemetry::Counter* repair =
      file.network().telemetry()->metrics().FindCounter(
          "recovery.repair_bytes_moved");
  ASSERT_NE(repair, nullptr) << "no repair traffic recorded";
  EXPECT_GT(repair->value(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Codes, RecoveryUnderFireTest,
                         ::testing::Values("rs", "lrc2"));

}  // namespace
}  // namespace lhrs
