// Tests for the locality-sharded parallel execution engine: mailbox
// ordering, timer-wheel behaviour, stable task affinity, virtual
// service-time clocks, idle detection and graceful shutdown.

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "exec/mpsc_mailbox.h"
#include "exec/parallel_network.h"
#include "exec/timer_wheel.h"
#include "net/locality.h"
#include "net/message.h"
#include "net/network.h"
#include "net/node.h"

namespace lhrs {
namespace {

using exec::MakeNetwork;
using exec::MpscMailbox;
using exec::ParallelNetwork;
using exec::TimerEntry;
using exec::TimerWheel;

// --- MpscMailbox ------------------------------------------------------------

TEST(MpscMailboxTest, FifoPerSenderUnderConcurrentProducers) {
  MpscMailbox<std::pair<int, int>> mailbox;  // (sender, sequence).
  constexpr int kSenders = 4;
  constexpr int kPerSender = 2000;

  std::vector<std::thread> producers;
  for (int s = 0; s < kSenders; ++s) {
    producers.emplace_back([&mailbox, s] {
      for (int i = 0; i < kPerSender; ++i) mailbox.Push({s, i});
    });
  }

  std::vector<std::pair<int, int>> drained;
  std::vector<std::pair<int, int>> batch;
  while (drained.size() < size_t{kSenders} * kPerSender) {
    batch.clear();
    mailbox.PopAll(&batch, std::chrono::microseconds(1000));
    drained.insert(drained.end(), batch.begin(), batch.end());
  }
  for (std::thread& t : producers) t.join();

  // Each sender's items appear in push order, however the threads raced.
  std::vector<int> next(kSenders, 0);
  for (const auto& [sender, seq] : drained) {
    EXPECT_EQ(seq, next[sender]) << "sender " << sender << " reordered";
    ++next[sender];
  }
  for (int s = 0; s < kSenders; ++s) EXPECT_EQ(next[s], kPerSender);
  EXPECT_TRUE(mailbox.empty());
}

TEST(MpscMailboxTest, PopAllBlocksUntilPush) {
  MpscMailbox<int> mailbox;
  std::thread producer([&mailbox] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    mailbox.Push(42);
  });
  std::vector<int> batch;
  // Generous timeout: the wait must end on the push, not the deadline.
  while (batch.empty()) {
    mailbox.PopAll(&batch, std::chrono::microseconds(100000));
  }
  producer.join();
  EXPECT_EQ(batch, std::vector<int>{42});
}

// --- TimerWheel -------------------------------------------------------------

std::vector<uint64_t> PopIds(TimerWheel& wheel, SimTime t) {
  std::vector<TimerEntry> due;
  wheel.PopDue(t, &due);
  std::vector<uint64_t> ids;
  for (const TimerEntry& e : due) ids.push_back(e.timer_id);
  return ids;
}

TEST(TimerWheelTest, PopsInTimeThenInsertionOrder) {
  TimerWheel wheel;
  wheel.Schedule(500, 1, /*timer_id=*/3, true);
  wheel.Schedule(100, 1, /*timer_id=*/1, true);
  wheel.Schedule(500, 1, /*timer_id=*/4, true);  // Same time: seq breaks tie.
  wheel.Schedule(300, 1, /*timer_id=*/2, true);
  EXPECT_EQ(PopIds(wheel, 400), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(PopIds(wheel, 1000), (std::vector<uint64_t>{3, 4}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, OverflowBeyondHorizonCascadesBack) {
  TimerWheel wheel(/*slot_us=*/16, /*slots=*/8);  // Horizon: 128us.
  // Far beyond the horizon (lands in overflow), inside it, and in between.
  wheel.Schedule(10'000, 1, 30, true);
  wheel.Schedule(50, 1, 10, true);
  wheel.Schedule(400, 1, 20, true);
  EXPECT_EQ(PopIds(wheel, 60), std::vector<uint64_t>{10});
  EXPECT_EQ(PopIds(wheel, 401), std::vector<uint64_t>{20});
  EXPECT_EQ(PopIds(wheel, 9'999), std::vector<uint64_t>{});
  EXPECT_EQ(PopIds(wheel, 20'000), std::vector<uint64_t>{30});
}

TEST(TimerWheelTest, PastDeadlineClampsToCursor) {
  TimerWheel wheel;
  std::vector<TimerEntry> due;
  wheel.PopDue(1000, &due);  // Advances the cursor past 1000.
  wheel.Schedule(200, 1, 7, true);  // Already overdue: fires immediately.
  EXPECT_EQ(PopIds(wheel, 1001), std::vector<uint64_t>{7});
}

TEST(TimerWheelTest, ManyTimersFireInOrderUnderLoad) {
  TimerWheel wheel(/*slot_us=*/32, /*slots=*/64);
  // Deterministic scatter across several horizons, with collisions.
  constexpr uint64_t kCount = 5000;
  for (uint64_t i = 0; i < kCount; ++i) {
    wheel.Schedule((i * 2654435761u) % 40'000, 1, i, i % 3 == 0);
  }
  EXPECT_EQ(wheel.size(), kCount);
  std::vector<TimerEntry> due;
  SimTime last = 0;
  size_t popped = 0;
  for (SimTime t = 1000; t <= 40'000; t += 1000) {
    due.clear();
    wheel.PopDue(t, &due);
    for (const TimerEntry& e : due) {
      EXPECT_GE(e.time, last);
      EXPECT_LE(e.time, t);
      last = e.time;
    }
    popped += due.size();
  }
  EXPECT_EQ(popped, kCount);
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.wake_count(), 0u);
}

TEST(TimerWheelTest, NextWakeTimeSkipsNonWakeEntries) {
  TimerWheel wheel;
  wheel.Schedule(100, 1, 1, /*wake=*/false);
  wheel.Schedule(900, 1, 2, /*wake=*/true);
  ASSERT_TRUE(wheel.NextWakeTime().has_value());
  EXPECT_EQ(*wheel.NextWakeTime(), 900u);
  EXPECT_EQ(wheel.wake_count(), 1u);
}

// --- ParallelNetwork --------------------------------------------------------

constexpr int kProbeMsgKind = 91;

struct ProbeMsg : MessageBody {
  int payload = 0;
  size_t size = 16;

  int kind() const override { return kProbeMsgKind; }
  size_t ByteSize() const override { return size; }
};

/// Records the locality every handler invocation runs on. The recording
/// mutex also hands the contents to the driver thread with proper
/// happens-before for post-quiescence asserts.
class ProbeNode : public Node {
 public:
  explicit ProbeNode(const char* role, NodeId reply_to = kInvalidNode)
      : role_(role), reply_to_(reply_to) {}

  void HandleMessage(const Message& msg) override {
    std::lock_guard<std::mutex> lock(mu_);
    message_localities_.push_back(CurrentLocality());
    payloads_.push_back(static_cast<const ProbeMsg&>(*msg.body).payload);
    receive_times_.push_back(network()->now());
    if (reply_to_ != kInvalidNode) {
      auto reply = std::make_unique<ProbeMsg>();
      reply->payload = -static_cast<const ProbeMsg&>(*msg.body).payload;
      Send(reply_to_, std::move(reply));
    }
  }

  void HandleTimer(uint64_t timer_id) override {
    std::lock_guard<std::mutex> lock(mu_);
    timer_localities_.push_back(CurrentLocality());
    fired_.push_back(timer_id);
    fire_times_.push_back(network()->now());
  }

  const char* role() const override { return role_; }

  std::vector<size_t> message_localities() const {
    std::lock_guard<std::mutex> lock(mu_);
    return message_localities_;
  }
  std::vector<size_t> timer_localities() const {
    std::lock_guard<std::mutex> lock(mu_);
    return timer_localities_;
  }
  std::vector<int> payloads() const {
    std::lock_guard<std::mutex> lock(mu_);
    return payloads_;
  }
  std::vector<uint64_t> fired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fired_;
  }
  std::vector<SimTime> fire_times() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fire_times_;
  }
  std::vector<SimTime> receive_times() const {
    std::lock_guard<std::mutex> lock(mu_);
    return receive_times_;
  }

 private:
  mutable std::mutex mu_;
  const char* role_;
  NodeId reply_to_;
  std::vector<size_t> message_localities_;
  std::vector<size_t> timer_localities_;
  std::vector<int> payloads_;
  std::vector<uint64_t> fired_;
  std::vector<SimTime> fire_times_;
  std::vector<SimTime> receive_times_;
};

NetworkConfig ParallelConfig(size_t localities) {
  NetworkConfig cfg;
  cfg.localities = localities;
  return cfg;
}

TEST(MakeNetworkTest, LocalityCountSelectsEngine) {
  auto classic = MakeNetwork(ParallelConfig(0));
  EXPECT_EQ(dynamic_cast<ParallelNetwork*>(classic.get()), nullptr);
  auto parallel = MakeNetwork(ParallelConfig(3));
  auto* p = dynamic_cast<ParallelNetwork*>(parallel.get());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->worker_count(), 3u);
}

TEST(ParallelNetworkTest, BucketRolesShardAcrossWorkersOthersStayHome) {
  ParallelNetwork net(ParallelConfig(4));
  const NodeId client = net.AddNode(std::make_unique<ProbeNode>("client"));
  const NodeId coord = net.AddNode(std::make_unique<ProbeNode>("coordinator"));
  std::vector<NodeId> buckets;
  std::set<size_t> used;
  for (int i = 0; i < 32; ++i) {
    buckets.push_back(net.AddNode(std::make_unique<ProbeNode>("data-bucket")));
    const size_t loc = net.LocalityOf(buckets.back());
    EXPECT_GE(loc, 1u);
    EXPECT_LE(loc, 4u);
    used.insert(loc);
  }
  EXPECT_EQ(net.LocalityOf(client), kHomeLocality);
  EXPECT_EQ(net.LocalityOf(coord), kHomeLocality);
  EXPECT_GT(used.size(), 1u);  // Hash placement actually shards.
}

TEST(ParallelNetworkTest, EveryHandlerRunsOnTheNodesAffinity) {
  ParallelNetwork net(ParallelConfig(3));
  std::vector<ProbeNode*> probes;
  const NodeId home = net.AddNode(std::make_unique<ProbeNode>("client"));
  std::vector<NodeId> ids;
  for (int i = 0; i < 12; ++i) {
    auto probe = std::make_unique<ProbeNode>("data-bucket", home);
    probes.push_back(probe.get());
    ids.push_back(net.AddNode(std::move(probe)));
  }
  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    for (size_t i = 0; i < ids.size(); ++i) {
      auto msg = std::make_unique<ProbeMsg>();
      msg->payload = round;
      net.Send(home, ids[i], std::move(msg));
    }
    net.RunUntilIdle();
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    const size_t expected = net.LocalityOf(ids[i]);
    const std::vector<size_t> seen = probes[i]->message_localities();
    ASSERT_EQ(seen.size(), size_t{kRounds});
    for (size_t loc : seen) EXPECT_EQ(loc, expected);
  }
  net.Stop();
}

TEST(ParallelNetworkTest, SetAffinityPinsPlacement) {
  ParallelNetwork net(ParallelConfig(4));
  const NodeId home = net.AddNode(std::make_unique<ProbeNode>("client"));
  auto probe = std::make_unique<ProbeNode>("data-bucket");
  ProbeNode* p = probe.get();
  const NodeId id = net.AddNode(std::move(probe));
  net.SetAffinity(id, 2);
  EXPECT_EQ(net.LocalityOf(id), 2u);
  for (int i = 0; i < 5; ++i) {
    net.Send(home, id, std::make_unique<ProbeMsg>());
  }
  net.RunUntilIdle();
  const std::vector<size_t> seen = p->message_localities();
  ASSERT_EQ(seen.size(), 5u);
  for (size_t loc : seen) EXPECT_EQ(loc, 2u);
}

TEST(ParallelNetworkTest, RepliesFlowBackToTheHomeLocality) {
  ParallelNetwork net(ParallelConfig(2));
  auto sink = std::make_unique<ProbeNode>("client");
  ProbeNode* sink_ptr = sink.get();
  const NodeId home = net.AddNode(std::move(sink));
  auto probe = std::make_unique<ProbeNode>("data-bucket", home);
  ProbeNode* p = probe.get();
  const NodeId id = net.AddNode(std::move(probe));
  constexpr int kCount = 50;
  for (int i = 0; i < kCount; ++i) {
    auto msg = std::make_unique<ProbeMsg>();
    msg->payload = i + 1;
    net.Send(home, id, std::move(msg));
  }
  net.RunUntilIdle();
  EXPECT_EQ(p->payloads().size(), size_t{kCount});
  std::vector<int> replies = sink_ptr->payloads();
  ASSERT_EQ(replies.size(), size_t{kCount});
  std::sort(replies.begin(), replies.end());
  EXPECT_EQ(replies.front(), -kCount);
  EXPECT_EQ(replies.back(), -1);
  // Home handlers run on the driver thread's locality.
  for (size_t loc : sink_ptr->message_localities()) {
    EXPECT_EQ(loc, kHomeLocality);
  }
}

TEST(ParallelNetworkTest, ServiceTimeChargesTheDestinationClock) {
  NetworkConfig cfg = ParallelConfig(2);
  cfg.service_us_per_task = 100;
  ParallelNetwork net(cfg);
  const NodeId home = net.AddNode(std::make_unique<ProbeNode>("client"));
  auto probe = std::make_unique<ProbeNode>("data-bucket");
  ProbeNode* p = probe.get();
  const NodeId id = net.AddNode(std::move(probe));
  constexpr int kCount = 10;
  for (int i = 0; i < kCount; ++i) {
    net.Send(home, id, std::make_unique<ProbeMsg>());
  }
  net.RunUntilIdle();
  const std::vector<SimTime> times = p->receive_times();
  ASSERT_EQ(times.size(), size_t{kCount});
  // All arrive at the same simulated instant but queue on the bucket's
  // core: each handler sees the clock at least one service quantum past
  // its predecessor — the occupancy model bench_f11_scaling relies on.
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_GE(times[i], times[i - 1] + 100);
  }
}

TEST(ParallelNetworkTest, WorkerWakeTimersFireUnderMessageLoad) {
  ParallelNetwork net(ParallelConfig(2));
  const NodeId home = net.AddNode(std::make_unique<ProbeNode>("client"));
  auto probe = std::make_unique<ProbeNode>("data-bucket");
  ProbeNode* p = probe.get();
  const NodeId id = net.AddNode(std::move(probe));
  for (uint64_t t = 1; t <= 20; ++t) {
    net.ScheduleTimer(id, t * 50, t, /*wake=*/true);
  }
  for (int i = 0; i < 30; ++i) {
    net.Send(home, id, std::make_unique<ProbeMsg>());
  }
  net.RunUntilIdle();
  std::vector<uint64_t> fired = p->fired();
  std::sort(fired.begin(), fired.end());
  ASSERT_EQ(fired.size(), 20u);
  EXPECT_EQ(fired.front(), 1u);
  EXPECT_EQ(fired.back(), 20u);
  const std::vector<SimTime> times = p->fire_times();
  for (SimTime t : times) EXPECT_GE(t, 50u);
  for (size_t loc : p->timer_localities()) {
    EXPECT_EQ(loc, net.LocalityOf(id));
  }
  EXPECT_EQ(p->payloads().size(), 30u);
}

TEST(ParallelNetworkTest, RunUntilPlaysOutNonWakeWorkerTimers) {
  ParallelNetwork net(ParallelConfig(2));
  auto probe = std::make_unique<ProbeNode>("data-bucket");
  ProbeNode* p = probe.get();
  const NodeId id = net.AddNode(std::move(probe));
  net.ScheduleTimer(id, 1000, 7, /*wake=*/false);
  net.RunUntilIdle();
  EXPECT_TRUE(p->fired().empty());  // Non-wake: idle run leaves it armed.
  net.RunUntil(2000);
  EXPECT_EQ(p->fired(), std::vector<uint64_t>{7});
  EXPECT_GE(net.now(), 2000u);
}

TEST(ParallelNetworkTest, StepReturnsFalseOnlyWhenEverythingDrained) {
  ParallelNetwork net(ParallelConfig(2));
  const NodeId home = net.AddNode(std::make_unique<ProbeNode>("client"));
  auto probe = std::make_unique<ProbeNode>("data-bucket");
  ProbeNode* p = probe.get();
  const NodeId id = net.AddNode(std::move(probe));
  EXPECT_FALSE(net.Step());  // Nothing queued anywhere.
  net.Send(home, id, std::make_unique<ProbeMsg>());
  // Step must not report idle while the delivery is queued or running on
  // the worker; once it reports false the message has been handled.
  while (net.Step()) {
  }
  EXPECT_EQ(p->payloads().size(), 1u);
}

TEST(ParallelNetworkTest, UnavailableBucketBouncesToWorkerSender) {
  NetworkConfig cfg = ParallelConfig(2);
  cfg.timeout_us = 500;
  ParallelNetwork net(cfg);
  const NodeId home = net.AddNode(std::make_unique<ProbeNode>("client"));
  auto probe = std::make_unique<ProbeNode>("data-bucket");
  const NodeId id = net.AddNode(std::move(probe));
  net.SetAvailable(id, false);
  net.Send(home, id, std::make_unique<ProbeMsg>());
  net.RunUntilIdle();
  EXPECT_FALSE(net.available(id));
  EXPECT_EQ(net.stats().delivery_failures(), 1u);
  net.SetAvailable(id, true);
  EXPECT_TRUE(net.available(id));
}

TEST(ParallelNetworkTest, StopDrainsQueuedWork) {
  ParallelNetwork net(ParallelConfig(4));
  const NodeId home = net.AddNode(std::make_unique<ProbeNode>("client"));
  std::vector<ProbeNode*> probes;
  std::vector<NodeId> ids;
  for (int i = 0; i < 8; ++i) {
    auto probe = std::make_unique<ProbeNode>("data-bucket");
    probes.push_back(probe.get());
    ids.push_back(net.AddNode(std::move(probe)));
  }
  constexpr int kPerBucket = 25;
  for (int round = 0; round < kPerBucket; ++round) {
    for (NodeId id : ids) net.Send(home, id, std::make_unique<ProbeMsg>());
  }
  net.Stop();  // No pump: the graceful drain must execute everything queued.
  size_t total = 0;
  for (ProbeNode* p : probes) total += p->payloads().size();
  EXPECT_EQ(total, size_t{kPerBucket} * ids.size());
}

TEST(ParallelNetworkTest, StatsMergeShardsOnce) {
  ParallelNetwork net(ParallelConfig(2));
  const NodeId home = net.AddNode(std::make_unique<ProbeNode>("client"));
  const NodeId id = net.AddNode(std::make_unique<ProbeNode>("data-bucket"));
  constexpr int kCount = 12;
  for (int i = 0; i < kCount; ++i) {
    net.Send(home, id, std::make_unique<ProbeMsg>());
  }
  net.RunUntilIdle();
  EXPECT_EQ(net.stats().total_messages(), size_t{kCount});
  EXPECT_EQ(net.stats().deliveries(), size_t{kCount});
  // A second read must not double-count the merged worker shards.
  EXPECT_EQ(net.stats().deliveries(), size_t{kCount});
}

}  // namespace
}  // namespace lhrs
