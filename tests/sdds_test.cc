// Tests for the scheme-agnostic SDDS facade and the pipelined session
// layer: async Submit/Poll/Take, bounded windows, completion-driven
// refill, latency attribution, and — the load-bearing property — exact
// equivalence of the N=1/W=1 open-loop schedule with the closed-loop
// synchronous API, chaos included.

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/workload.h"
#include "baselines/lhm/lhm_file.h"
#include "baselines/lhs/lhs_file.h"
#include "chaos/chaos.h"
#include "common/rng.h"
#include "lhrs/lhrs_file.h"
#include "lhstar/lhstar_file.h"
#include "sdds/session.h"

namespace lhrs {
namespace {

using chaos::FaultPlan;
using sdds::OpToken;
using sdds::PipelinedRunner;
using sdds::RunnerOptions;
using sdds::RunnerReport;
using sdds::SddsOp;
using sdds::SessionPool;

Bytes Val(const std::string& s) { return BytesFromString(s); }

LhrsFile::Options LhrsOpts(uint32_t m = 4, uint32_t k = 1,
                           size_t capacity = 8) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = capacity;
  opts.group_size = m;
  opts.policy.base_k = k;
  return opts;
}

std::vector<Key> MakeKeys(int n, uint64_t seed) {
  Rng rng(seed);
  std::set<Key> keys;
  while (keys.size() < static_cast<size_t>(n)) keys.insert(rng.Next64());
  return {keys.begin(), keys.end()};
}

/// Op source replaying a fixed script in order, any session.
sdds::PipelinedRunner::OpSource Scripted(const std::vector<SddsOp>& script) {
  auto next = std::make_shared<size_t>(0);
  return [&script, next](size_t /*session*/) -> std::optional<SddsOp> {
    if (*next >= script.size()) return std::nullopt;
    return script[(*next)++];
  };
}

TEST(SddsFacadeTest, SubmitPollTakeLifecycle) {
  LhStarFile file(LhStarFile::Options{});
  const OpToken ins = file.Submit(0, OpType::kInsert, 7, Val("seven"));
  EXPECT_FALSE(file.Poll(ins));  // Nothing ran yet.
  while (!file.Poll(ins)) ASSERT_TRUE(file.network().Step());
  auto out = file.Take(ins);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->status.ok());
  EXPECT_FALSE(file.Poll(ins));          // Consumed.
  EXPECT_FALSE(file.Take(ins).ok());     // Unknown token now.

  const OpToken get = file.Submit(0, OpType::kSearch, 7, {});
  file.network().RunUntilIdle();
  ASSERT_TRUE(file.Poll(get));
  auto got = file.Take(get);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->status.ok());
  EXPECT_EQ(got->value.ToBytes(), Val("seven"));
}

TEST(SddsFacadeTest, CompletionListenerFiresInsideEventProcessing) {
  LhStarFile file(LhStarFile::Options{});
  std::vector<OpToken> completed;
  file.SetCompletionListener([&](OpToken t) { completed.push_back(t); });
  const OpToken a = file.Submit(0, OpType::kInsert, 1, Val("a"));
  file.network().RunUntilIdle();
  EXPECT_EQ(completed, std::vector<OpToken>{a});
  // The listener may take the result from inside the callback.
  file.SetCompletionListener([&](OpToken t) {
    auto out = file.Take(t);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(out->status.ok());
  });
  file.Submit(0, OpType::kSearch, 1, {});
  file.network().RunUntilIdle();
  file.SetCompletionListener(nullptr);
}

TEST(SddsFacadeTest, SchemesWithoutScanRejectIt) {
  lhm::LhmFile mirror({});
  EXPECT_TRUE(mirror.Scan().status().IsInvalidArgument());
  lhs::LhsFile striped(lhs::LhsFile::Options{});
  EXPECT_TRUE(striped.Scan().status().IsInvalidArgument());
}

TEST(SessionPoolTest, WindowIsEnforcedAndLatenciesStamped) {
  LhrsFile file(LhrsOpts());
  SessionPool pool(file, /*sessions=*/1, /*window=*/2);
  std::vector<SimTime> latencies;
  pool.SetCompletionHandler([&](size_t session, const SddsOp& op,
                                const OpOutcome& outcome, SimTime latency) {
    EXPECT_EQ(session, 0u);
    EXPECT_TRUE(outcome.status.ok()) << outcome.status << " op " << op.key;
    latencies.push_back(latency);
  });
  pool.Submit(0, SddsOp{OpType::kInsert, 1, Val("one")});
  pool.Submit(0, SddsOp{OpType::kInsert, 2, Val("two")});
  EXPECT_FALSE(pool.HasCapacity(0));  // Window full at W=2.
  EXPECT_EQ(pool.inflight_total(), 2u);
  file.network().RunUntilIdle();
  EXPECT_EQ(pool.inflight_total(), 0u);
  ASSERT_EQ(latencies.size(), 2u);
  for (SimTime l : latencies) EXPECT_GT(l, 0u);
}

TEST(SessionPoolTest, LatencyExcludesBackgroundSplitWork) {
  // Fill one bucket so the next insert triggers a split. The op's latency
  // is stamped when *its reply* reaches the client — the split traffic the
  // drain then plays out must not be billed to the op.
  LhrsFile file(LhrsOpts(4, 1, /*capacity=*/4));
  std::vector<Key> keys = MakeKeys(5, 31);
  for (size_t i = 0; i + 1 < keys.size(); ++i) {
    ASSERT_TRUE(file.Insert(keys[i], Val("x")).ok());
  }
  SessionPool pool(file, 1, 1);
  SimTime latency = 0;
  pool.SetCompletionHandler([&](size_t, const SddsOp&, const OpOutcome& out,
                                SimTime l) {
    ASSERT_TRUE(out.status.ok());
    latency = l;
  });
  const SimTime start = file.network().now();
  pool.Submit(0, SddsOp{OpType::kInsert, keys.back(), Val("x")});
  file.network().RunUntilIdle();
  const SimTime drained = file.network().now() - start;
  ASSERT_GT(latency, 0u);
  // The drain kept processing split/parity traffic well past the reply.
  EXPECT_LT(latency, drained);
}

TEST(PipelinedRunnerTest, UnitWindowMatchesSynchronousRunExactly) {
  // N=1/W=1 is the seed's closed-loop execution model: the same ops must
  // produce the same message count and the same final clock, to the byte.
  const std::vector<Key> keys = MakeKeys(60, 41);
  std::vector<SddsOp> script;
  for (Key k : keys) {
    script.push_back(SddsOp{OpType::kInsert, k, Val("v" + std::to_string(k))});
  }
  for (Key k : keys) script.push_back(SddsOp{OpType::kSearch, k, {}});

  LhrsFile sync_file(LhrsOpts());
  for (Key k : keys) {
    ASSERT_TRUE(sync_file.Insert(k, Val("v" + std::to_string(k))).ok());
  }
  for (Key k : keys) ASSERT_TRUE(sync_file.Search(k).ok());

  LhrsFile piped_file(LhrsOpts());
  PipelinedRunner runner(piped_file, RunnerOptions{1, 1, 0});
  const RunnerReport report = runner.Run(Scripted(script));
  EXPECT_EQ(report.completed, script.size());
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.stalled, 0u);
  EXPECT_EQ(piped_file.network().stats().total_messages(),
            sync_file.network().stats().total_messages());
  EXPECT_EQ(piped_file.network().now(), sync_file.network().now());
}

TEST(PipelinedRunnerTest, PipeliningRaisesThroughputWithSameWork) {
  const std::vector<Key> keys = MakeKeys(200, 43);
  std::vector<SddsOp> script;
  for (Key k : keys) {
    script.push_back(SddsOp{OpType::kInsert, k, Val("w" + std::to_string(k))});
  }
  auto run = [&](size_t sessions, size_t window) {
    LhrsFile file(LhrsOpts());
    PipelinedRunner runner(file, RunnerOptions{sessions, window, 0});
    RunnerReport report = runner.Run(Scripted(script));
    EXPECT_EQ(report.completed, script.size());
    EXPECT_EQ(report.failures, 0u);
    return report;
  };
  const RunnerReport closed = run(1, 1);
  const RunnerReport open = run(4, 4);
  // Same ops, overlapping in simulated time: strictly less wall-clock.
  EXPECT_LT(open.elapsed_us(), closed.elapsed_us());
  EXPECT_GT(open.OpsPerSimSecond(), closed.OpsPerSimSecond());
}

TEST(PipelinedRunnerTest, TwoSessionsRacingASplitLoseNothing) {
  // Tiny buckets force splits mid-stream while two sessions keep four ops
  // in flight; every record must land and stay addressable, and the
  // parity invariants must hold afterwards.
  LhrsFile file(LhrsOpts(4, 1, /*capacity=*/4));
  const std::vector<Key> keys = MakeKeys(160, 47);
  std::vector<SddsOp> script;
  for (Key k : keys) {
    script.push_back(SddsOp{OpType::kInsert, k, Val("r" + std::to_string(k))});
  }
  PipelinedRunner runner(file, RunnerOptions{2, 2, 0});
  const RunnerReport report = runner.Run(Scripted(script));
  EXPECT_EQ(report.completed, script.size());
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.stalled, 0u);
  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, Val("r" + std::to_string(k)));
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(PipelinedRunnerTest, MirroredFilePipelinesWithoutBreakingInvariant) {
  lhm::LhmFile file({});
  const std::vector<Key> keys = MakeKeys(120, 53);
  std::vector<SddsOp> script;
  for (Key k : keys) {
    script.push_back(SddsOp{OpType::kInsert, k, Val("m" + std::to_string(k))});
  }
  PipelinedRunner runner(file, RunnerOptions{2, 2, 0});
  const RunnerReport report = runner.Run(Scripted(script));
  EXPECT_EQ(report.completed, script.size());
  EXPECT_EQ(report.failures, 0u);
  EXPECT_TRUE(file.VerifyMirrorInvariant().ok());
  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << got.status();
  }
}

TEST(PipelinedRunnerTest, StripedFileServesDegradedReadsPipelined) {
  lhs::LhsFile file(lhs::LhsFile::Options{});
  const std::vector<Key> keys = MakeKeys(40, 59);
  Rng rng(59);
  std::vector<Bytes> values;
  std::vector<SddsOp> inserts;
  for (Key k : keys) {
    values.push_back(rng.RandomBytes(64 + rng.Uniform(64)));
    inserts.push_back(SddsOp{OpType::kInsert, k, values.back()});
  }
  {
    PipelinedRunner runner(file, RunnerOptions{2, 2, 0});
    const RunnerReport report = runner.Run(Scripted(inserts));
    ASSERT_EQ(report.completed, inserts.size());
    ASSERT_EQ(report.failures, 0u);
  }
  // Kill one stripe column's bucket mid-life; pipelined reads must still
  // all complete with the right payloads (parked + rebuilt server-side).
  file.CrashStripeBucketOf(2, keys[0]);
  std::vector<SddsOp> searches;
  for (Key k : keys) searches.push_back(SddsOp{OpType::kSearch, k, {}});
  std::map<Key, Bytes> expected;
  for (size_t i = 0; i < keys.size(); ++i) expected[keys[i]] = values[i];
  PipelinedRunner runner(file, RunnerOptions{2, 2, 0});
  size_t verified = 0;
  const RunnerReport report = runner.Run(
      Scripted(searches),
      [&](size_t, const SddsOp& op, const OpOutcome& out) {
        ASSERT_TRUE(out.status.ok()) << out.status;
        EXPECT_EQ(out.value.ToBytes(), expected[op.key]);
        ++verified;
      });
  EXPECT_EQ(report.completed, searches.size());
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(verified, searches.size());
}

TEST(OpenLoopWorkloadTest, DriverRunsCleanAcrossSchemes) {
  WorkloadSpec spec;
  auto drive = [&](sdds::SddsFile& file) {
    Rng rng(67);
    OpenLoopOptions options;
    options.sessions = 4;
    options.window = 2;
    const OpenLoopResult result =
        RunOpenLoopWorkload(file, spec, 300, options, rng);
    EXPECT_EQ(result.report.completed, 300u);
    EXPECT_EQ(result.stats.failures, 0u) << result.stats.ToString();
    EXPECT_EQ(result.report.stalled, 0u);
    EXPECT_GT(result.stats.live_keys, 0u);
    EXPECT_GT(result.report.OpsPerSimSecond(), 0.0);
  };
  LhrsFile rs(LhrsOpts());
  drive(rs);
  EXPECT_TRUE(rs.VerifyParityInvariants().ok());
  lhm::LhmFile mirror({});
  drive(mirror);
  EXPECT_TRUE(mirror.VerifyMirrorInvariant().ok());
}

TEST(OpenLoopWorkloadTest, SameSeedReplaysByteIdenticallyUnderChaos) {
  // The headline determinism property carried over to the open-loop world:
  // a pipelined run under seeded message chaos (delays, duplicates,
  // reorders) is a pure function of its seeds — the full telemetry trace
  // and every per-op latency replay byte-identically.
  auto run = [](std::string& trace, RunnerReport& report) {
    LhrsFile file(LhrsOpts(4, 2));
    file.network().EnableTelemetry();
    FaultPlan plan;
    plan.seed = 91;
    plan.DuplicateMessages(0.05)
        .DelayMessages(0.15, 400, 200)
        .ReorderMessages(0.1, 300);
    file.AttachChaos(std::move(plan));
    WorkloadSpec spec;
    Rng rng(97);
    OpenLoopOptions options;
    options.sessions = 3;
    options.window = 2;
    const OpenLoopResult result =
        RunOpenLoopWorkload(file, spec, 250, options, rng);
    EXPECT_EQ(result.report.completed, 250u);
    report = result.report;
    file.DetachChaos();
    trace = file.network().telemetry()->tracer().ToJson();
  };
  std::string trace_a, trace_b;
  RunnerReport report_a, report_b;
  run(trace_a, report_a);
  run(trace_b, report_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(report_a.latencies_us, report_b.latencies_us);
  EXPECT_EQ(report_a.end_us, report_b.end_us);
  EXPECT_EQ(report_a.ok, report_b.ok);
}

}  // namespace
}  // namespace lhrs
