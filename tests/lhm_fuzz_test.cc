// Randomized scenario fuzzing of the LH*m mirroring baseline: interleaved
// ops with single-replica crashes and recoveries, checked against a shadow
// model and the replica-equality invariant.

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/lhm/lhm_file.h"
#include "common/rng.h"

namespace lhrs::lhm {
namespace {

class LhmFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LhmFuzzTest, LongRandomScenario) {
  LhmFile::Options opts;
  opts.file.bucket_capacity = 8;
  LhmFile file(opts);
  Rng rng(GetParam());

  std::map<Key, Bytes> model;
  bool primary_crashed = false;
  BucketNo crashed_bucket = 0;

  for (int step = 0; step < 700; ++step) {
    const int action = static_cast<int>(rng.Uniform(100));
    if (action < 45) {
      const Key key = rng.Next64();
      const Bytes value = rng.RandomBytes(1 + rng.Uniform(32));
      const Status s = file.Insert(key, value);
      if (model.contains(key)) {
        EXPECT_TRUE(s.IsAlreadyExists());
      } else if (s.ok()) {
        model[key] = value;
      } else {
        ADD_FAILURE() << "step " << step << ": " << s;
      }
    } else if (action < 58 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      const Bytes value = rng.RandomBytes(1 + rng.Uniform(32));
      ASSERT_TRUE(file.Update(it->first, value).ok()) << "step " << step;
      it->second = value;
    } else if (action < 68 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(file.Delete(it->first).ok()) << "step " << step;
      model.erase(it);
    } else if (action < 86 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      auto got = file.Search(it->first);
      ASSERT_TRUE(got.ok()) << "step " << step << ": " << got.status();
      EXPECT_EQ(*got, it->second);
    } else if (action < 92 && !primary_crashed) {
      crashed_bucket =
          static_cast<BucketNo>(rng.Uniform(file.bucket_count()));
      file.CrashPrimaryBucket(crashed_bucket);
      primary_crashed = true;
    } else if (primary_crashed) {
      file.RecoverPrimaryBucket(crashed_bucket);
      primary_crashed = false;
    }
  }

  if (primary_crashed) file.RecoverPrimaryBucket(crashed_bucket);
  EXPECT_TRUE(file.VerifyMirrorInvariant().ok());
  for (const auto& [key, value] : model) {
    auto got = file.Search(key);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LhmFuzzTest,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace lhrs::lhm
