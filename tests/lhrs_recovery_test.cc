// LH*RS recovery tests: unavailability detection, bucket recovery at hot
// spares, degraded-mode record recovery, multi-failure k-availability and
// the data-loss boundary beyond k failures.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lhrs/lhrs_file.h"
#include "lhrs/recovery.h"

namespace lhrs {
namespace {

Bytes Val(const std::string& s) { return BytesFromString(s); }

LhrsFile::Options Opts(uint32_t m, uint32_t k, size_t capacity = 8) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = capacity;
  opts.group_size = m;
  opts.policy.base_k = k;
  return opts;
}

/// Populates the file with `n` random keys and returns them.
std::vector<Key> Populate(LhrsFile& file, int n, uint64_t seed) {
  Rng rng(seed);
  std::set<Key> keys;
  while (keys.size() < static_cast<size_t>(n)) keys.insert(rng.Next64());
  std::vector<Key> out(keys.begin(), keys.end());
  for (Key k : out) {
    EXPECT_TRUE(file.Insert(k, Val("value-" + std::to_string(k))).ok());
  }
  return out;
}

void ExpectAllFindable(LhrsFile& file, const std::vector<Key>& keys) {
  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status();
    EXPECT_EQ(*got, Val("value-" + std::to_string(k)));
  }
}

TEST(LhrsRecoveryTest, SearchOnCrashedBucketIsServedAndBucketRecovered) {
  LhrsFile file(Opts(4, 1));
  std::vector<Key> keys = Populate(file, 120, 42);
  ASSERT_GT(file.bucket_count(), 4u);

  const BucketNo victim = 2;
  file.CrashDataBucket(victim);

  // Every key remains searchable: keys on the dead bucket are served by
  // degraded-mode record recovery, which also triggers bucket recovery.
  ExpectAllFindable(file, keys);
  EXPECT_GT(file.rs_coordinator().degraded_reads_served(), 0u);
  EXPECT_GE(file.rs_coordinator().recoveries_completed(), 1u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  EXPECT_EQ(file.rs_coordinator().groups_lost(), 0u);
}

TEST(LhrsRecoveryTest, ExplicitDetectionRecoversWholeBucket) {
  LhrsFile file(Opts(4, 1));
  std::vector<Key> keys = Populate(file, 150, 43);
  const BucketNo victim = 1;
  const size_t victim_records = file.rs_bucket(victim)->record_count();
  ASSERT_GT(victim_records, 0u);
  const NodeId dead = file.CrashDataBucket(victim);

  file.DetectAndRecover(dead);
  EXPECT_EQ(file.rs_coordinator().recoveries_completed(), 1u);
  // The recovered bucket lives at a different node with identical content.
  EXPECT_NE(file.context().allocation.Lookup(victim), dead);
  EXPECT_EQ(file.rs_bucket(victim)->record_count(), victim_records);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  ExpectAllFindable(file, keys);
}

TEST(LhrsRecoveryTest, RecoveredBucketPreservesRankBookkeeping) {
  LhrsFile file(Opts(4, 1, /*capacity=*/100));
  ASSERT_TRUE(file.Insert(0, Val("a")).ok());   // bucket 0, rank 1.
  ASSERT_TRUE(file.Insert(4, Val("b")).ok());   // bucket 0, rank 2.
  ASSERT_TRUE(file.Insert(8, Val("c")).ok());   // bucket 0, rank 3.
  ASSERT_TRUE(file.Delete(4).ok());             // Frees rank 2.
  const NodeId dead = file.CrashDataBucket(0);
  file.DetectAndRecover(dead);
  // Rank 2 must still be free and reused by the next insert.
  ASSERT_TRUE(file.Insert(12, Val("d")).ok());
  EXPECT_EQ(file.rs_bucket(0)->RankOf(12), 2u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(LhrsRecoveryTest, ParityBucketRecoveredFromDataColumns) {
  LhrsFile file(Opts(4, 2));
  std::vector<Key> keys = Populate(file, 100, 44);
  const size_t before = file.parity_bucket(0, 1)->parity_record_count();
  ASSERT_GT(before, 0u);
  const NodeId dead = file.CrashParityBucket(0, 1);
  file.DetectAndRecover(dead);
  EXPECT_NE(file.rs_coordinator().group_info(0).parity_nodes[1], dead);
  EXPECT_EQ(file.parity_bucket(0, 1)->parity_record_count(), before);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  ExpectAllFindable(file, keys);
}

TEST(LhrsRecoveryTest, InsertDuringParityOutageHealsViaReport) {
  LhrsFile file(Opts(4, 1, /*capacity=*/1000));
  ASSERT_TRUE(file.Insert(1, Val("value-1")).ok());
  file.CrashParityBucket(0, 0);
  // The insert succeeds (client-visible), the parity delta bounces, the
  // data bucket reports it, and the coordinator rebuilds the parity
  // bucket; afterwards everything is consistent again.
  ASSERT_TRUE(file.Insert(2, Val("value-2")).ok());
  file.network().RunUntilIdle();
  EXPECT_GE(file.rs_coordinator().recoveries_completed(), 1u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

class MultiFailureTest
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(MultiFailureTest, UpToKFailuresPerGroupAreRecovered) {
  const auto [m, k] = GetParam();
  LhrsFile file(Opts(m, k, /*capacity=*/10));
  std::vector<Key> keys = Populate(file, 200, 45 + m + k);
  ASSERT_GE(file.bucket_count(), m);

  // Kill k columns of group 0: alternate data and parity columns.
  uint32_t killed = 0;
  std::vector<NodeId> dead;
  for (uint32_t i = 0; i < k; ++i) {
    if (i % 2 == 0 && i / 2 < m && i / 2 < file.bucket_count()) {
      dead.push_back(file.CrashDataBucket(i / 2));
    } else {
      dead.push_back(file.CrashParityBucket(0, i / 2));
    }
    ++killed;
  }
  ASSERT_EQ(killed, k);
  for (NodeId n : dead) file.DetectAndRecover(n);
  EXPECT_EQ(file.rs_coordinator().groups_lost(), 0u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok())
      << "m=" << m << " k=" << k;
  ExpectAllFindable(file, keys);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MultiFailureTest,
    ::testing::Values(std::pair{4u, 1u}, std::pair{4u, 2u}, std::pair{4u, 3u},
                      std::pair{8u, 2u}, std::pair{2u, 2u}));

TEST(LhrsRecoveryTest, SimultaneousKDataFailuresInOneGroup) {
  LhrsFile file(Opts(4, 2, /*capacity=*/10));
  std::vector<Key> keys = Populate(file, 200, 50);
  ASSERT_GE(file.bucket_count(), 4u);
  const NodeId dead1 = file.CrashDataBucket(0);
  const NodeId dead2 = file.CrashDataBucket(1);
  (void)dead2;
  // One notification mentions one node; the planner discovers both.
  file.DetectAndRecover(dead1);
  EXPECT_EQ(file.rs_coordinator().groups_lost(), 0u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  ExpectAllFindable(file, keys);
}

TEST(LhrsRecoveryTest, MoreThanKFailuresLosesGroupLoudly) {
  LhrsFile file(Opts(4, 1, /*capacity=*/10));
  std::vector<Key> keys = Populate(file, 150, 51);
  ASSERT_GE(file.bucket_count(), 4u);
  const NodeId dead1 = file.CrashDataBucket(0);
  file.CrashDataBucket(1);  // Second failure in the same group: > k = 1.
  file.DetectAndRecover(dead1);
  EXPECT_EQ(file.rs_coordinator().groups_lost(), 1u);
  // Ops touching the lost group fail with kDataLoss, not silently.
  const FileState& state = file.coordinator().state();
  bool saw_data_loss = false;
  for (Key k : keys) {
    auto got = file.Search(k);
    const BucketNo a = state.Address(k);
    if (a / 4 == 0) {
      if (a == 0 || a == 1) {
        EXPECT_TRUE(got.status().IsDataLoss()) << got.status();
        saw_data_loss = true;
      }
    } else {
      EXPECT_TRUE(got.ok()) << got.status();
    }
  }
  EXPECT_TRUE(saw_data_loss);
}

TEST(LhrsRecoveryTest, DegradedReadsWithoutAutoRecovery) {
  LhrsFile::Options opts = Opts(4, 2, /*capacity=*/10);
  opts.auto_recover = false;
  LhrsFile file(opts);
  std::vector<Key> keys = Populate(file, 150, 52);
  ASSERT_GE(file.bucket_count(), 4u);
  file.CrashDataBucket(2);
  const FileState& state = file.coordinator().state();
  // Searches on the dead bucket succeed via record recovery; the bucket
  // itself stays down (no recovery ran).
  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, Val("value-" + std::to_string(k)));
    (void)state;
  }
  EXPECT_EQ(file.rs_coordinator().recoveries_completed(), 0u);
  EXPECT_GT(file.rs_coordinator().degraded_reads_served(), 0u);
}

TEST(LhrsRecoveryTest, DegradedSearchForAbsentKeyIsNotFound) {
  LhrsFile::Options opts = Opts(4, 1, /*capacity=*/1000);
  opts.auto_recover = false;
  LhrsFile file(opts);
  ASSERT_TRUE(file.Insert(0, Val("x")).ok());
  file.CrashDataBucket(0);
  // Key 4 would live in bucket 0 but was never inserted: the degraded
  // search must answer NotFound (from the parity file), not block.
  auto got = file.Search(4);
  EXPECT_TRUE(got.status().IsNotFound()) << got.status();
}

TEST(LhrsRecoveryTest, WritesDuringOutageAreParkedAndApplied) {
  LhrsFile file(Opts(4, 1, /*capacity=*/1000));
  ASSERT_TRUE(file.Insert(0, Val("value-0")).ok());
  file.CrashDataBucket(0);
  // Insert to the dead bucket: completes after the transparent recovery.
  ASSERT_TRUE(file.Insert(4, Val("value-4")).ok());
  EXPECT_GE(file.rs_coordinator().recoveries_completed(), 1u);
  auto got = file.Search(4);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Val("value-4"));
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(LhrsRecoveryTest, UpdateAndDeleteDuringOutage) {
  LhrsFile file(Opts(4, 2, /*capacity=*/1000));
  ASSERT_TRUE(file.Insert(0, Val("value-0")).ok());
  ASSERT_TRUE(file.Insert(4, Val("value-4")).ok());
  file.CrashDataBucket(0);
  ASSERT_TRUE(file.Update(0, Val("fresh")).ok());
  ASSERT_TRUE(file.Delete(4).ok());
  auto got = file.Search(0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Val("fresh"));
  EXPECT_TRUE(file.Search(4).status().IsNotFound());
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(LhrsRecoveryTest, RestoredNodeStandsDownAsSpare) {
  LhrsFile file(Opts(4, 1));
  std::vector<Key> keys = Populate(file, 120, 53);
  const NodeId old_node = file.CrashDataBucket(0);
  file.DetectAndRecover(old_node);
  // The original server comes back from its transient outage, self-checks
  // and learns it was replaced (section 2.5.4).
  file.RestoreNode(old_node);
  auto* old_bucket = file.network().node_as<DataBucketNode>(old_node);
  EXPECT_TRUE(old_bucket->decommissioned());
  EXPECT_EQ(old_bucket->record_count(), 0u);
  ExpectAllFindable(file, keys);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(LhrsRecoveryTest, RestoredNodeKeepsServingIfNotReplaced) {
  LhrsFile::Options opts = Opts(4, 1);
  opts.auto_recover = false;
  LhrsFile file(opts);
  std::vector<Key> keys = Populate(file, 100, 54);
  const NodeId node = file.CrashDataBucket(1);
  // Nobody noticed the outage; the node restarts with intact data.
  file.RestoreNode(node);
  auto* bucket = file.network().node_as<DataBucketNode>(node);
  EXPECT_FALSE(bucket->decommissioned());
  ExpectAllFindable(file, keys);
}

TEST(LhrsRecoveryTest, StaleClientCacheAfterDisplacementHeals) {
  LhrsFile file(Opts(4, 1));
  std::vector<Key> keys = Populate(file, 120, 55);
  // The default client has cached addresses. Crash + recover bucket 0:
  // the cache now points at the decommissioned node.
  const NodeId old_node = file.CrashDataBucket(0);
  file.DetectAndRecover(old_node);
  file.RestoreNode(old_node);  // Alive again, but a spare now.
  // Ops via the stale cache must transparently reach the new bucket
  // (section 2.8 cases ii/iii) and correct the client.
  ExpectAllFindable(file, keys);
  ExpectAllFindable(file, keys);  // Second pass: cache healed, no bounce.
}

TEST(LhrsRecoveryTest, ScanSucceedsAfterRecovery) {
  LhrsFile file(Opts(4, 1));
  std::vector<Key> keys = Populate(file, 130, 56);
  const NodeId dead = file.CrashDataBucket(2);
  auto blocked = file.Scan();
  EXPECT_TRUE(blocked.status().IsUnavailable());
  file.DetectAndRecover(dead);
  auto scan = file.Scan();
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->size(), keys.size());
}

TEST(LhrsRecoveryTest, RecoveryOfPartialLastGroup) {
  // Grow the file so its last group has fewer than m buckets, then crash
  // a bucket in that partial group: the non-existing slots are known-zero
  // columns and recovery must still work.
  LhrsFile file(Opts(4, 1, /*capacity=*/10));
  std::vector<Key> keys = Populate(file, 180, 57);
  const BucketNo buckets = file.bucket_count();
  ASSERT_NE(buckets % 4, 0u) << "test needs a partial last group";
  const BucketNo victim = buckets - 1;  // In the partial group.
  const NodeId dead = file.CrashDataBucket(victim);
  file.DetectAndRecover(dead);
  EXPECT_EQ(file.rs_coordinator().groups_lost(), 0u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  ExpectAllFindable(file, keys);
}

TEST(LhrsRecoveryTest, FileKeepsScalingAfterRecovery) {
  LhrsFile file(Opts(4, 1, /*capacity=*/8));
  std::vector<Key> keys = Populate(file, 100, 58);
  const NodeId dead = file.CrashDataBucket(0);
  file.DetectAndRecover(dead);
  Rng rng(59);
  std::vector<Key> more;
  for (int i = 0; i < 200; ++i) {
    const Key k = rng.Next64();
    if (file.Insert(k, Val("value-" + std::to_string(k))).ok()) {
      more.push_back(k);
    }
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  ExpectAllFindable(file, keys);
  ExpectAllFindable(file, more);
}

// ---------------------------------------------------------------------------
// Code-parameterized drills: the same failure scenarios run under the RS
// code, progressive RS, and the LRC code, and must yield identical
// client-visible contents. Geometry m = 4, k = 3 is valid for all of them
// (lrc2 splits the four slots into two local groups + one global parity),
// and every failure pattern used here is recoverable under the non-MDS
// LRC too.

class CodedRecoveryTest : public ::testing::TestWithParam<const char*> {
 protected:
  LhrsFile::Options CodedOpts(uint32_t m, uint32_t k, size_t capacity = 8) {
    LhrsFile::Options opts = Opts(m, k, capacity);
    auto spec = parity::CodeSpec::Parse(GetParam());
    EXPECT_TRUE(spec.ok()) << spec.status();
    if (spec.ok()) opts.code = *spec;
    return opts;
  }
};

TEST_P(CodedRecoveryTest, CrashedBucketRecoversIdenticalContents) {
  LhrsFile file(CodedOpts(4, 3));
  std::vector<Key> keys = Populate(file, 120, 61);
  ASSERT_GT(file.bucket_count(), 4u);
  EXPECT_EQ(file.code_name(), GetParam());

  const NodeId dead = file.CrashDataBucket(2);
  file.DetectAndRecover(dead);
  EXPECT_GE(file.rs_coordinator().recoveries_completed(), 1u);
  EXPECT_EQ(file.rs_coordinator().groups_lost(), 0u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  ExpectAllFindable(file, keys);
}

TEST_P(CodedRecoveryTest, ParityBucketRecoversFromDataColumns) {
  LhrsFile file(CodedOpts(4, 3));
  std::vector<Key> keys = Populate(file, 100, 62);
  const size_t before = file.parity_bucket(0, 2)->parity_record_count();
  ASSERT_GT(before, 0u);
  const NodeId dead = file.CrashParityBucket(0, 2);
  file.DetectAndRecover(dead);
  EXPECT_EQ(file.parity_bucket(0, 2)->parity_record_count(), before);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  ExpectAllFindable(file, keys);
}

TEST_P(CodedRecoveryTest, FailuresInDistinctLocalGroupsRecover) {
  // Data buckets 0 and 2 sit in different lrc2 local groups, so even the
  // locality-limited code repairs both (each from its own group).
  LhrsFile file(CodedOpts(4, 3, /*capacity=*/10));
  std::vector<Key> keys = Populate(file, 200, 63);
  ASSERT_GE(file.bucket_count(), 4u);
  const NodeId dead1 = file.CrashDataBucket(0);
  const NodeId dead2 = file.CrashDataBucket(2);
  file.DetectAndRecover(dead1);
  file.DetectAndRecover(dead2);
  EXPECT_EQ(file.rs_coordinator().groups_lost(), 0u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  ExpectAllFindable(file, keys);
}

TEST_P(CodedRecoveryTest, DegradedReadsServeIdenticalContents) {
  LhrsFile::Options opts = CodedOpts(4, 3, /*capacity=*/10);
  opts.auto_recover = false;
  LhrsFile file(opts);
  std::vector<Key> keys = Populate(file, 150, 64);
  ASSERT_GE(file.bucket_count(), 4u);
  file.CrashDataBucket(1);
  ExpectAllFindable(file, keys);
  EXPECT_EQ(file.rs_coordinator().recoveries_completed(), 0u);
  EXPECT_GT(file.rs_coordinator().degraded_reads_served(), 0u);
}

TEST_P(CodedRecoveryTest, WritesDuringOutageHealIdentically) {
  LhrsFile file(CodedOpts(4, 3, /*capacity=*/1000));
  ASSERT_TRUE(file.Insert(0, Val("value-0")).ok());
  ASSERT_TRUE(file.Insert(1, Val("value-1")).ok());
  file.CrashDataBucket(0);
  ASSERT_TRUE(file.Insert(4, Val("value-4")).ok());
  ASSERT_TRUE(file.Update(1, Val("fresh")).ok());
  EXPECT_GE(file.rs_coordinator().recoveries_completed(), 1u);
  auto got = file.Search(4);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, Val("value-4"));
  got = file.Search(1);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, Val("fresh"));
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(Codes, CodedRecoveryTest,
                         ::testing::Values("rs", "rs+prog", "lrc2",
                                           "lrc2+prog"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '+') c = '_';
                           }
                           return name;
                         });

// Pure-logic reconstruction tests (no network).
TEST(ReconstructColumnsTest, RejectsInsufficientSurvivors) {
  CoderCache coders(4);
  ReconstructionRequest req;
  req.m = 4;
  req.k = 1;
  req.coder = &coders.ForK(1);
  req.existing_slots = 4;
  req.missing_columns = {0, 1};  // Two losses, k = 1.
  ColumnDump d2;
  d2.column = 2;
  ColumnDump d3;
  d3.column = 3;
  ColumnDump p0;
  p0.column = 4;
  req.survivors = {d2, d3, p0};
  auto result = ReconstructColumns(req);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDataLoss());
}

TEST(ReconstructColumnsTest, RejectsDataLossWithoutParityMetadata) {
  CoderCache coders(4);
  ReconstructionRequest req;
  req.m = 4;
  req.k = 2;
  req.coder = &coders.ForK(2);
  req.existing_slots = 2;  // Slots 2 and 3 do not exist (known zero).
  req.missing_columns = {0};
  ColumnDump d1;
  d1.column = 1;
  req.survivors = {d1};  // 1 survivor + 2 zeros = 3 < 4... and no parity.
  auto result = ReconstructColumns(req);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDataLoss());
}

}  // namespace
}  // namespace lhrs
