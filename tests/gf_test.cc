// Unit tests for the GF(2^8) and GF(2^16) arithmetic kernels.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gf/gf.h"
#include "gf/gf256.h"
#include "gf/gf65536.h"

namespace lhrs {
namespace {

template <typename F>
class GaloisFieldTest : public ::testing::Test {};

using FieldTypes = ::testing::Types<GF256, GF65536>;
TYPED_TEST_SUITE(GaloisFieldTest, FieldTypes);

TYPED_TEST(GaloisFieldTest, SatisfiesConcept) {
  static_assert(GaloisField<TypeParam>);
}

TYPED_TEST(GaloisFieldTest, AdditionIsXor) {
  using S = typename TypeParam::Symbol;
  EXPECT_EQ(TypeParam::Add(S{0x5A}, S{0x5A}), 0);
  EXPECT_EQ(TypeParam::Add(S{0x12}, S{0}), 0x12);
}

TYPED_TEST(GaloisFieldTest, MultiplicativeIdentityAndZero) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto a =
        static_cast<typename TypeParam::Symbol>(rng.Next64() %
                                                TypeParam::kOrder);
    EXPECT_EQ(TypeParam::Mul(a, 1), a);
    EXPECT_EQ(TypeParam::Mul(1, a), a);
    EXPECT_EQ(TypeParam::Mul(a, 0), 0);
    EXPECT_EQ(TypeParam::Mul(0, a), 0);
  }
}

TYPED_TEST(GaloisFieldTest, MultiplicationCommutesAndAssociates) {
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<typename TypeParam::Symbol>(
        rng.Next64() % TypeParam::kOrder);
    const auto b = static_cast<typename TypeParam::Symbol>(
        rng.Next64() % TypeParam::kOrder);
    const auto c = static_cast<typename TypeParam::Symbol>(
        rng.Next64() % TypeParam::kOrder);
    EXPECT_EQ(TypeParam::Mul(a, b), TypeParam::Mul(b, a));
    EXPECT_EQ(TypeParam::Mul(TypeParam::Mul(a, b), c),
              TypeParam::Mul(a, TypeParam::Mul(b, c)));
  }
}

TYPED_TEST(GaloisFieldTest, DistributesOverAddition) {
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<typename TypeParam::Symbol>(
        rng.Next64() % TypeParam::kOrder);
    const auto b = static_cast<typename TypeParam::Symbol>(
        rng.Next64() % TypeParam::kOrder);
    const auto c = static_cast<typename TypeParam::Symbol>(
        rng.Next64() % TypeParam::kOrder);
    EXPECT_EQ(TypeParam::Mul(a, TypeParam::Add(b, c)),
              TypeParam::Add(TypeParam::Mul(a, b), TypeParam::Mul(a, c)));
  }
}

TYPED_TEST(GaloisFieldTest, InverseRoundTrips) {
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    auto a = static_cast<typename TypeParam::Symbol>(rng.Next64() %
                                                     TypeParam::kOrder);
    if (a == 0) a = 1;
    EXPECT_EQ(TypeParam::Mul(a, TypeParam::Inv(a)), 1);
    const auto b = static_cast<typename TypeParam::Symbol>(
        1 + rng.Next64() % (TypeParam::kOrder - 1));
    EXPECT_EQ(TypeParam::Mul(TypeParam::Div(a, b), b), a);
  }
}

TYPED_TEST(GaloisFieldTest, ExpLogRoundTrip) {
  for (uint32_t e = 0; e < 1000; ++e) {
    const auto x = TypeParam::Exp(e);
    EXPECT_NE(x, 0);
    EXPECT_EQ(TypeParam::Exp(TypeParam::Log(x)), x);
  }
}

TYPED_TEST(GaloisFieldTest, GeneratorHasFullOrder) {
  // alpha^i must not repeat before the full multiplicative group is
  // enumerated: alpha^(order-1) == 1 and no smaller positive power is 1.
  const uint32_t group_order = TypeParam::kOrder - 1;
  EXPECT_EQ(TypeParam::Exp(group_order), 1);
  // Spot-check proper divisors of the group order.
  std::vector<uint32_t> divisors;
  for (uint32_t d = 1; d * d <= group_order; ++d) {
    if (group_order % d == 0) {
      divisors.push_back(d);
      divisors.push_back(group_order / d);
    }
  }
  for (uint32_t d : divisors) {
    if (d == group_order) continue;
    EXPECT_NE(TypeParam::Exp(d), 1) << "generator order divides " << d;
  }
}

TYPED_TEST(GaloisFieldTest, MulAddBufferMatchesScalarLoop) {
  Rng rng(31);
  const size_t kLen = 1024;  // Even, so GF65536 sees whole symbols.
  Bytes src = rng.RandomBytes(kLen);
  for (uint32_t trial = 0; trial < 16; ++trial) {
    const auto coeff = static_cast<typename TypeParam::Symbol>(
        rng.Next64() % TypeParam::kOrder);
    Bytes dst = rng.RandomBytes(kLen);
    Bytes expected = dst;
    // Scalar reference: symbol-wise multiply-accumulate.
    const size_t sym = TypeParam::kSymbolBytes;
    for (size_t i = 0; i < kLen; i += sym) {
      uint32_t s = 0;
      for (size_t b = 0; b < sym; ++b) s |= uint32_t{src[i + b]} << (8 * b);
      const auto prod = TypeParam::Mul(
          static_cast<typename TypeParam::Symbol>(s), coeff);
      for (size_t b = 0; b < sym; ++b) {
        expected[i + b] ^= static_cast<uint8_t>(prod >> (8 * b));
      }
    }
    TypeParam::MulAddBuffer(dst.data(), src.data(), kLen, coeff);
    EXPECT_EQ(dst, expected) << "coeff=" << uint64_t{coeff};
  }
}

TYPED_TEST(GaloisFieldTest, MulAddBufferCoeffOneIsXor) {
  Rng rng(37);
  Bytes src = rng.RandomBytes(256);
  Bytes dst = rng.RandomBytes(256);
  Bytes expected = dst;
  for (size_t i = 0; i < src.size(); ++i) expected[i] ^= src[i];
  TypeParam::MulAddBuffer(dst.data(), src.data(), src.size(), 1);
  EXPECT_EQ(dst, expected);
}

TYPED_TEST(GaloisFieldTest, MulAddBufferCoeffZeroIsNoop) {
  Rng rng(41);
  Bytes src = rng.RandomBytes(128);
  Bytes dst = rng.RandomBytes(128);
  Bytes expected = dst;
  TypeParam::MulAddBuffer(dst.data(), src.data(), src.size(), 0);
  EXPECT_EQ(dst, expected);
}

TEST(Gf256Test, KnownProducts) {
  // From the 0x11D tables: 2*2=4, 0x80*2 = 0x1D (reduction kicks in).
  EXPECT_EQ(GF256::Mul(2, 2), 4);
  EXPECT_EQ(GF256::Mul(0x80, 2), 0x1D);
  EXPECT_EQ(GF256::Mul(0xFF, 0xFF), GF256::Exp(2 * GF256::Log(0xFF) % 255));
}

TEST(Gf256Test, AllInversesUnique) {
  std::vector<bool> seen(256, false);
  for (uint32_t a = 1; a < 256; ++a) {
    const uint8_t inv = GF256::Inv(static_cast<uint8_t>(a));
    EXPECT_FALSE(seen[inv]);
    seen[inv] = true;
    EXPECT_EQ(GF256::Mul(static_cast<uint8_t>(a), inv), 1);
  }
}

TEST(Gf65536Test, KnownProducts) {
  EXPECT_EQ(GF65536::Mul(2, 2), 4);
  // x^15 * x = x^16 = x^12 + x^3 + x + 1 (mod 0x1100B).
  EXPECT_EQ(GF65536::Mul(0x8000, 2), 0x100B);
}

TEST(XorBufferTest, HandlesOddLengthsAndTails) {
  Rng rng(43);
  for (size_t len : {0, 1, 7, 8, 9, 63, 64, 65, 1000}) {
    Bytes src = rng.RandomBytes(len);
    Bytes dst = rng.RandomBytes(len);
    Bytes expected = dst;
    for (size_t i = 0; i < len; ++i) expected[i] ^= src[i];
    XorBuffer(dst.data(), src.data(), len);
    EXPECT_EQ(dst, expected) << "len=" << len;
  }
}

}  // namespace
}  // namespace lhrs
