// Wire-format tests: every registered message kind round-trips through
// its codec byte-identically, every ByteSize() declaration matches the
// actual serialized length, truncated frames decode to null, and seeded
// random corruption never crashes the decoder (run under ASan/UBSan in
// CI's sanitize job).

#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/lhg/lhg_messages.h"
#include "baselines/lhm/lhm_file.h"
#include "baselines/lhs/lhs_file.h"
#include "common/rng.h"
#include "lhrs/messages.h"
#include "lhstar/messages.h"
#include "transport/wire.h"

namespace lhrs::transport {
namespace {

BufferView Payload(const char* s) { return BufferView::FromString(s); }

WireRecord SampleRecord(Key key, const char* value) {
  WireRecord r;
  r.key = key;
  r.tag = key * 31;
  r.value = Payload(value);
  return r;
}

lhrs::RankedRecord SampleRanked(Rank rank, Key key, const char* value) {
  lhrs::RankedRecord r;
  r.rank = rank;
  r.key = key;
  r.value = Payload(value);
  return r;
}

lhrs::WireParityRecord SampleParity(Rank rank) {
  lhrs::WireParityRecord p;
  p.rank = rank;
  p.keys = {Key{11}, std::nullopt, Key{13}, std::nullopt};
  p.lengths = {5, 0, 9, 0};
  p.parity = Payload("parity-bytes");
  return p;
}

lhrs::ParityDelta SampleDelta(Rank rank) {
  lhrs::ParityDelta d;
  d.rank = rank;
  d.slot = 2;
  d.key_op = lhrs::ParityDelta::KeyOp::kSet;
  d.key = 77;
  d.new_length = 16;
  d.delta = Payload("xor-delta-bytes!");
  return d;
}

/// One or more populated samples for every registered message kind.
/// Coverage is asserted against RegisteredWireKinds(), so adding a codec
/// without a sample here fails the suite.
std::vector<std::unique_ptr<MessageBody>> SampleBodies() {
  std::vector<std::unique_ptr<MessageBody>> out;
  const auto add = [&](auto body) { out.push_back(std::move(body)); };

  // --- LH* substrate ------------------------------------------------------
  {
    auto m = std::make_unique<OpRequestMsg>();
    m->op = OpType::kInsert;
    m->op_id = 42;
    m->client = 17;
    m->intended_bucket = 3;
    m->key = 0xDEADBEEF;
    m->value = Payload("record-payload");
    m->hops = 2;
    add(std::move(m));
  }
  add(std::make_unique<OpRequestMsg>());  // Empty-value variant.
  {
    auto m = std::make_unique<OpReplyMsg>();
    m->op_id = 42;
    m->code = StatusCode::kNotFound;
    m->error = "no such key";
    m->value = Payload("found-value");
    m->iam = IamInfo{5, 3};
    add(std::move(m));
  }
  add(std::make_unique<OpReplyMsg>());  // No-IAM, empty-error variant.
  {
    auto m = std::make_unique<OverflowReportMsg>();
    m->bucket = 9;
    m->record_count = 131;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<SplitOrderMsg>();
    m->new_bucket = 12;
    m->new_node = 44;
    m->new_level = 4;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<MoveRecordsMsg>();
    m->bucket = 6;
    m->level = 2;
    m->records = {SampleRecord(1, "alpha"), SampleRecord(2, "beta-longer")};
    add(std::move(m));
  }
  {
    auto m = std::make_unique<SplitDoneMsg>();
    m->bucket = 12;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<ScanRequestMsg>();
    m->op_id = 7;
    m->client = 30;
    m->attached_level = 2;
    m->predicate.contains = BytesFromString("needle");
    m->deterministic = true;
    add(std::move(m));
  }
  {
    // Predicate wire version 1: structured key range.
    auto m = std::make_unique<ScanRequestMsg>();
    m->op_id = 8;
    m->client = 30;
    m->attached_level = 2;
    m->predicate.has_key_range = true;
    m->predicate.key_min = 100;
    m->predicate.key_max = 4'000'000'000'000ULL;
    m->deterministic = false;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<ScanReplyMsg>();
    m->op_id = 7;
    m->bucket = 4;
    m->level = 3;
    m->coverage_failed = true;
    m->records = {SampleRecord(5, "match")};
    add(std::move(m));
  }
  {
    auto m = std::make_unique<ClientOpViaCoordinatorMsg>();
    m->op = OpType::kUpdate;
    m->op_id = 99;
    m->client = 21;
    m->intended_bucket = 8;
    m->key = 1234567;
    m->value = Payload("escalated-payload");
    add(std::move(m));
  }
  {
    auto m = std::make_unique<UnavailableReportMsg>();
    m->node = 15;
    m->bucket = 2;
    m->is_parity = true;
    m->group = 1;
    m->parity_index = 0;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<StateScanRequestMsg>();
    m->op_id = 3;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<StateScanReplyMsg>();
    m->op_id = 3;
    m->bucket = 7;
    m->level = 3;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<SelfCheckRequestMsg>();
    m->bucket = 5;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<SelfCheckReplyMsg>();
    m->bucket = 5;
    m->still_owner = false;
    m->replacement = 61;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<UnderflowReportMsg>();
    m->bucket = 3;
    m->record_count = 2;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<MergeOutMsg>();
    m->parent_bucket = 1;
    m->parent_node = 2;
    m->parent_new_level = 1;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<MergeRecordsMsg>();
    m->parent_bucket = 1;
    m->parent_new_level = 1;
    m->records = {SampleRecord(9, "merged")};
    add(std::move(m));
  }
  {
    auto m = std::make_unique<MergeDoneMsg>();
    m->bucket = 1;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<ImageResetMsg>();
    m->i = 2;
    m->n = 1;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<SurveyRequestMsg>();
    m->survey_id = 11;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<SurveyReplyMsg>();
    m->survey_id = 11;
    m->role = SurveyReplyMsg::Role::kParityBucket;
    m->decommissioned = true;
    m->bucket = 6;
    m->level = 2;
    m->record_count = 52;
    m->group = 1;
    m->parity_index = 1;
    m->k = 2;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<InsertBatchMsg>();
    m->op_id = 91;
    m->seq = 3;
    m->client = 12;
    m->intended_bucket = 5;
    m->attempt = 2;
    m->records = {SampleRecord(41, "bulk-a"), SampleRecord(42, "bulk-b")};
    add(std::move(m));
  }
  {
    auto m = std::make_unique<InsertBatchReplyMsg>();
    m->op_id = 91;
    m->seq = 3;
    m->bucket = 5;
    m->level = 3;
    m->applied = 1;
    m->exists = 0;
    m->bounced = false;
    m->rejected = {SampleRecord(42, "bulk-b")};
    add(std::move(m));
  }

  // --- LH*RS parity & recovery -------------------------------------------
  {
    auto m = std::make_unique<lhrs::ParityDeltaMsg>();
    m->group = 2;
    m->delta = SampleDelta(19);
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhrs::ParityDeltaBatchMsg>();
    m->group = 2;
    m->deltas = {SampleDelta(19), SampleDelta(20)};
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhrs::GroupConfigMsg>();
    m->group = 3;
    m->k = 2;
    m->parity_nodes = {71, 72};
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhrs::ColumnReadRequestMsg>();
    m->task_id = 4;
    m->group = 1;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhrs::ColumnReadReplyMsg>();
    m->task_id = 4;
    m->column = 2;
    m->records = {SampleRanked(0, 31, "col-record")};
    m->level = 3;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhrs::ColumnReadReplyMsg>();
    m->task_id = 4;
    m->column = 5;  // Parity column variant.
    m->parity_records = {SampleParity(0), SampleParity(1)};
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhrs::InstallDataColumnMsg>();
    m->task_id = 4;
    m->bucket = 6;
    m->level = 3;
    m->records = {SampleRanked(1, 33, "installed")};
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhrs::InstallParityColumnMsg>();
    m->task_id = 4;
    m->group = 1;
    m->parity_index = 0;
    m->parity_records = {SampleParity(2)};
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhrs::InstallDoneMsg>();
    m->task_id = 4;
    m->column = 5;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhrs::FindRankRequestMsg>();
    m->task_id = 8;
    m->key = 555;
    m->slot = 1;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhrs::FindRankReplyMsg>();
    m->task_id = 8;
    m->found = true;
    m->parity_index = 1;
    m->record = SampleParity(3);
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhrs::RecordReadRequestMsg>();
    m->task_id = 8;
    m->rank = 3;
    m->column = 0;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhrs::RecordReadReplyMsg>();
    m->task_id = 8;
    m->column = 0;
    m->found = true;
    m->record = SampleRanked(3, 555, "degraded-read");
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhrs::ParityRecordRequestMsg>();
    m->task_id = 8;
    m->rank = 3;
    m->column = 4;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhrs::ParityRecordReplyMsg>();
    m->task_id = 8;
    m->column = 4;
    m->found = true;
    m->record = SampleParity(3);
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhrs::PingRequestMsg>();
    m->probe_id = 66;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhrs::PongReplyMsg>();
    m->probe_id = 66;
    add(std::move(m));
  }

  // --- LH*g baseline ------------------------------------------------------
  {
    auto m = std::make_unique<lhg::ParityUpdateMsg>();
    m->gkey = lhg::GroupKey{2, 9}.Packed();
    m->op = lhg::ParityUpdateMsg::Op::kValueUpdate;
    m->member = 321;
    m->new_length = 12;
    m->delta = Payload("lhg-delta");
    m->reply_to = 14;
    m->intended_bucket = 1;
    m->hops = 1;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhg::ParityIamMsg>();
    m->bucket = 3;
    m->level = 2;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhg::CollectForDataMsg>();
    m->task_id = 21;
    m->bucket = 2;
    m->file_level = 3;
    m->group_size = 4;
    m->initial_buckets = 1;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhg::CollectForDataReplyMsg>();
    m->task_id = 21;
    m->from_bucket = 0;
    lhg::SerializedParityRecord rec;
    rec.gkey = lhg::GroupKey{1, 4}.Packed();
    rec.data = Payload("serialized-parity-record");
    m->records = {rec};
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhg::CollectForParityMsg>();
    m->task_id = 22;
    m->parity_bucket = 1;
    m->also_bucket = 3;
    m->i2 = 1;
    m->n2 = 0;
    m->f2_initial_buckets = 1;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhg::CollectForParityReplyMsg>();
    m->task_id = 22;
    m->from_bucket = 2;
    lhg::TaggedRecord rec;
    rec.gkey = lhg::GroupKey{0, 7}.Packed();
    rec.key = 432;
    rec.value = Payload("tagged-value");
    m->records = {rec};
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhg::InstallParityMsg>();
    m->task_id = 23;
    m->bucket = 1;
    m->level = 1;
    lhg::SerializedParityRecord rec;
    rec.gkey = 5;
    rec.data = Payload("rebuilt");
    m->records = {rec};
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhg::InstallDataMsg>();
    m->task_id = 23;
    m->bucket = 2;
    m->level = 2;
    m->counter = 17;
    lhg::TaggedRecord rec;
    rec.gkey = 6;
    rec.key = 88;
    rec.value = Payload("rebuilt-data");
    m->records = {rec};
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhg::InstallAckMsg>();
    m->task_id = 23;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhg::FindParityMsg>();
    m->task_id = 24;
    m->key = 765;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhg::FindParityReplyMsg>();
    m->task_id = 24;
    m->from_bucket = 1;
    m->found = true;
    m->gkey = 9;
    m->record = Payload("found-parity");
    add(std::move(m));
  }

  // --- LH*m baseline ------------------------------------------------------
  {
    auto m = std::make_unique<lhm::MirrorReadMsg>();
    m->task_id = 31;
    m->bucket = 2;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhm::MirrorReadReplyMsg>();
    m->task_id = 31;
    m->level = 2;
    m->records = {SampleRecord(3, "mirrored")};
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhm::MirrorInstallMsg>();
    m->task_id = 31;
    m->bucket = 2;
    m->level = 2;
    m->records = {SampleRecord(3, "mirrored")};
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhm::MirrorAckMsg>();
    m->task_id = 31;
    add(std::move(m));
  }

  // --- LH*s baseline ------------------------------------------------------
  {
    auto m = std::make_unique<lhs::StripeReadMsg>();
    m->task_id = 41;
    m->bucket = 1;
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhs::StripeReadReplyMsg>();
    m->task_id = 41;
    m->file_index = 2;
    m->level = 1;
    m->failed = true;
    m->records = {SampleRecord(4, "striped")};
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhs::StripeInstallMsg>();
    m->task_id = 41;
    m->bucket = 1;
    m->level = 1;
    m->records = {SampleRecord(4, "striped")};
    add(std::move(m));
  }
  {
    auto m = std::make_unique<lhs::StripeAckMsg>();
    m->task_id = 41;
    add(std::move(m));
  }

  return out;
}

class WireTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterAllWireCodecs(); }
};

// Every registered kind has at least one sample, so the round-trip suite
// below actually covers the whole registry.
TEST_F(WireTest, EveryRegisteredKindHasASample) {
  std::set<int> sampled;
  for (const auto& body : SampleBodies()) sampled.insert(body->kind());
  for (int kind : RegisteredWireKinds()) {
    EXPECT_TRUE(sampled.contains(kind))
        << "no sample body for registered kind " << kind << " ("
        << FindWireCodec(kind)->name << ")";
  }
}

// serialize -> deserialize -> serialize must be byte-identical, proving
// the decoder reconstructs every field the encoder wrote.
TEST_F(WireTest, RoundTripIsByteIdentical) {
  for (const auto& body : SampleBodies()) {
    WireWriter w1;
    ASSERT_TRUE(SerializeBody(*body, w1))
        << "kind " << body->kind() << " did not serialize";
    const Bytes bytes1 = w1.Flatten();

    std::unique_ptr<MessageBody> decoded =
        DeserializeBody(body->kind(), BufferView(bytes1));
    ASSERT_NE(decoded, nullptr) << "kind " << body->kind() << " ("
                                << FindWireCodec(body->kind())->name
                                << ") did not decode its own encoding";
    EXPECT_EQ(decoded->kind(), body->kind());

    WireWriter w2;
    ASSERT_TRUE(SerializeBody(*decoded, w2));
    EXPECT_EQ(bytes1, w2.Flatten())
        << "kind " << body->kind() << " ("
        << FindWireCodec(body->kind())->name
        << ") re-encoded differently after a round trip";
  }
}

// The simulator charges transmission time by ByteSize(); the transport
// sends the serialized form. The two must agree or simulated and real
// costs diverge silently.
TEST_F(WireTest, ByteSizeMatchesSerializedLength) {
  for (const auto& body : SampleBodies()) {
    WireWriter w;
    ASSERT_TRUE(SerializeBody(*body, w));
    EXPECT_EQ(w.size(), body->ByteSize())
        << "kind " << body->kind() << " ("
        << FindWireCodec(body->kind())->name
        << ") declares a ByteSize different from its serialized length";
  }
}

// A scan predicate carrying a native function cannot travel; the
// serializer must refuse rather than silently drop the closure.
TEST_F(WireTest, CustomScanPredicateIsUnserializable) {
  ScanRequestMsg msg;
  msg.predicate.custom = [](Key, std::span<const uint8_t>) { return true; };
  WireWriter w;
  EXPECT_FALSE(SerializeBody(msg, w));
}

// The structured key-range predicate survives the wire with both bounds
// and composes with `contains`.
TEST_F(WireTest, ScanRequestKeyRangeRoundTrips) {
  ScanRequestMsg msg;
  msg.op_id = 11;
  msg.client = 3;
  msg.predicate.contains = BytesFromString("needle");
  msg.predicate.has_key_range = true;
  msg.predicate.key_min = 42;
  msg.predicate.key_max = 1000;
  WireWriter w;
  ASSERT_TRUE(SerializeBody(msg, w));
  const Bytes bytes = w.Flatten();

  auto decoded = DeserializeBody(msg.kind(), BufferView(bytes));
  ASSERT_NE(decoded, nullptr);
  const auto& out = static_cast<const ScanRequestMsg&>(*decoded);
  EXPECT_TRUE(out.predicate.has_key_range);
  EXPECT_EQ(out.predicate.key_min, 42u);
  EXPECT_EQ(out.predicate.key_max, 1000u);
  EXPECT_EQ(out.predicate.contains, msg.predicate.contains);
  // And the predicate actually selects on the decoded range.
  const Bytes hit = BytesFromString("a needle here");
  EXPECT_TRUE(out.predicate.Matches(500, hit));
  EXPECT_FALSE(out.predicate.Matches(41, hit));
  EXPECT_FALSE(out.predicate.Matches(1001, hit));
}

// A contains-only request encodes byte-identically to the pre-range frame
// (the version byte occupies what used to be zero padding), so old
// decoders keep reading new frames and vice versa.
TEST_F(WireTest, LegacyScanRequestFrameDecodesWithoutRange) {
  ScanRequestMsg msg;
  msg.op_id = 12;
  msg.predicate.contains = BytesFromString("x");
  WireWriter w;
  ASSERT_TRUE(SerializeBody(msg, w));
  const Bytes bytes = w.Flatten();
  // Version byte (offset 17: op_id 8 + client 4 + level 4 + bool 1) is 0 —
  // indistinguishable from the legacy layout's padding.
  ASSERT_GT(bytes.size(), 17u);
  EXPECT_EQ(bytes[17], 0);

  auto decoded = DeserializeBody(msg.kind(), BufferView(bytes));
  ASSERT_NE(decoded, nullptr);
  const auto& out = static_cast<const ScanRequestMsg&>(*decoded);
  EXPECT_FALSE(out.predicate.has_key_range);
  EXPECT_EQ(out.predicate.contains, msg.predicate.contains);
}

// Forward compatibility: a frame from a hypothetical newer build (higher
// predicate version, extra trailing fields) decodes its known prefix
// instead of bouncing the scan.
TEST_F(WireTest, FutureScanPredicateVersionIsTolerated) {
  ScanRequestMsg msg;
  msg.op_id = 13;
  msg.predicate.has_key_range = true;
  msg.predicate.key_min = 7;
  msg.predicate.key_max = 9;
  WireWriter w;
  ASSERT_TRUE(SerializeBody(msg, w));
  Bytes bytes = w.Flatten();
  bytes[17] = 2;                              // Pretend version 2...
  bytes.insert(bytes.end(), {1, 2, 3, 4});    // ...with unknown fields.

  auto decoded = DeserializeBody(msg.kind(), BufferView(bytes));
  ASSERT_NE(decoded, nullptr);
  const auto& out = static_cast<const ScanRequestMsg&>(*decoded);
  EXPECT_TRUE(out.predicate.has_key_range);
  EXPECT_EQ(out.predicate.key_min, 7u);
  EXPECT_EQ(out.predicate.key_max, 9u);
}

TEST_F(WireTest, UnknownKindDeserializesToNull) {
  const Bytes bytes = {0, 1, 2, 3};
  EXPECT_EQ(DeserializeBody(9999, BufferView(bytes)), nullptr);
  EXPECT_EQ(FindWireCodec(9999), nullptr);
}

// Every strict prefix of a valid frame must be rejected: a truncation
// cannot shrink embedded length/count fields, so the decoder always finds
// itself short of bytes (or with trailing garbage) and must say null —
// never crash, never over-read (ASan-checked in CI).
TEST_F(WireTest, TruncatedFramesAreRejected) {
  for (const auto& body : SampleBodies()) {
    WireWriter w;
    ASSERT_TRUE(SerializeBody(*body, w));
    const Bytes bytes = w.Flatten();
    for (size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_EQ(DeserializeBody(body->kind(), BufferView(bytes.data(), len)),
                nullptr)
          << "kind " << body->kind() << " accepted a " << len
          << "-byte prefix of its " << bytes.size() << "-byte encoding";
    }
  }
}

// Seeded corruption fuzz: flip random bytes in valid encodings and feed
// random garbage to every codec. The decoder may reject or (for benign
// flips) accept; it must never crash, and whatever it accepts must
// re-serialize without crashing. Runs when LHRS_WIRE_FUZZ_SEED (or the
// shared LHRS_FUZZ_SEED) is set — randomized per CI run (see
// .github/workflows/ci.yml), reproducible locally with
// LHRS_WIRE_FUZZ_SEED=<seed>. The corpus includes the versioned scan
// predicates, so the v0/v1 fallback path is fuzzed too.
TEST_F(WireTest, SeededCorruptionNeverCrashesDecoder) {
  const char* env = std::getenv("LHRS_WIRE_FUZZ_SEED");
  if (env == nullptr) env = std::getenv("LHRS_FUZZ_SEED");
  if (env == nullptr) {
    GTEST_SKIP() << "set LHRS_WIRE_FUZZ_SEED to run the corruption fuzz";
  }
  const uint64_t seed = std::strtoull(env, nullptr, 10);
  std::printf("wire corruption fuzz seed: %llu\n",
              static_cast<unsigned long long>(seed));
  Rng rng(seed);

  const auto samples = SampleBodies();
  const std::vector<int> kinds = RegisteredWireKinds();

  // Mutated valid frames: up to 4 byte flips each.
  for (int iter = 0; iter < 2000; ++iter) {
    const auto& body = samples[rng.Uniform(samples.size())];
    WireWriter w;
    ASSERT_TRUE(SerializeBody(*body, w));
    Bytes bytes = w.Flatten();
    if (bytes.empty()) continue;
    const uint32_t flips = 1 + static_cast<uint32_t>(rng.Uniform(4));
    for (uint32_t f = 0; f < flips; ++f) {
      bytes[rng.Uniform(bytes.size())] ^=
          static_cast<uint8_t>(1 + rng.Uniform(255));
    }
    std::unique_ptr<MessageBody> decoded =
        DeserializeBody(body->kind(), BufferView(bytes));
    if (decoded != nullptr) {
      WireWriter w2;
      (void)SerializeBody(*decoded, w2);  // Must not crash.
    }
  }

  // Pure garbage against every codec.
  for (int iter = 0; iter < 2000; ++iter) {
    const int kind = kinds[rng.Uniform(kinds.size())];
    const Bytes garbage = rng.RandomBytes(rng.Uniform(512));
    std::unique_ptr<MessageBody> decoded =
        DeserializeBody(kind, BufferView(garbage));
    if (decoded != nullptr) {
      WireWriter w2;
      (void)SerializeBody(*decoded, w2);
    }
  }
}

}  // namespace
}  // namespace lhrs::transport
