// LH*RS parity-maintenance tests: after any mix of inserts, updates,
// deletes and splits, the parity buckets must hold exactly the
// Reed-Solomon parity of the data buckets, group by group, rank by rank.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lhrs/lhrs_file.h"

namespace lhrs {
namespace {

Bytes Val(const std::string& s) { return BytesFromString(s); }

LhrsFile::Options SmallOptions(uint32_t m = 4, uint32_t k = 1,
                               size_t capacity = 8) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = capacity;
  opts.group_size = m;
  opts.policy.base_k = k;
  return opts;
}

TEST(LhrsBasicTest, InsertCreatesParityRecords) {
  LhrsFile file(SmallOptions());
  ASSERT_TRUE(file.Insert(1, Val("alpha")).ok());
  ASSERT_TRUE(file.Insert(2, Val("beta")).ok());
  EXPECT_EQ(file.parity_bucket(0, 0)->parity_record_count(), 2u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(LhrsBasicTest, ParityOfSingleRecordIsItsValue) {
  // With one member, the XOR parity column equals the record's payload.
  LhrsFile file(SmallOptions());
  ASSERT_TRUE(file.Insert(7, Val("solo")).ok());
  const auto& records = file.parity_bucket(0, 0)->parity_records();
  ASSERT_EQ(records.size(), 1u);
  const ParityRecord& pr = records.begin()->second;
  EXPECT_EQ(pr.parity, Val("solo"));
  EXPECT_EQ(pr.keys[0], Key{7});
  EXPECT_EQ(pr.lengths[0], 4u);
}

TEST(LhrsBasicTest, UpdateMaintainsParity) {
  LhrsFile file(SmallOptions());
  ASSERT_TRUE(file.Insert(1, Val("first")).ok());
  ASSERT_TRUE(file.Update(1, Val("second, and longer")).ok());
  ASSERT_TRUE(file.Update(1, Val("s")).ok());
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  auto got = file.Search(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Val("s"));
}

TEST(LhrsBasicTest, DeleteRemovesParityRecordWhenLastMember) {
  LhrsFile file(SmallOptions());
  ASSERT_TRUE(file.Insert(1, Val("x")).ok());
  ASSERT_TRUE(file.Delete(1).ok());
  EXPECT_EQ(file.parity_bucket(0, 0)->parity_record_count(), 0u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(LhrsBasicTest, RanksAreReusedAfterDelete) {
  LhrsFile file(SmallOptions());
  ASSERT_TRUE(file.Insert(10, Val("a")).ok());
  ASSERT_TRUE(file.Insert(20, Val("b")).ok());
  const Rank freed = file.rs_bucket(0)->RankOf(10);
  ASSERT_TRUE(file.Delete(10).ok());
  ASSERT_TRUE(file.Insert(30, Val("c")).ok());
  EXPECT_EQ(file.rs_bucket(0)->RankOf(30), freed)
      << "freed rank not reused smallest-first";
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(LhrsBasicTest, ParityMaintainedAcrossSplits) {
  LhrsFile file(SmallOptions(/*m=*/4, /*k=*/1, /*capacity=*/6));
  Rng rng(311);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), Val("v" + std::to_string(i))).ok());
  }
  ASSERT_GT(file.bucket_count(), 8u);
  ASSERT_GT(file.group_count(), 1u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(LhrsBasicTest, MixedWorkloadKeepsInvariants) {
  LhrsFile file(SmallOptions(/*m=*/4, /*k=*/2, /*capacity=*/8));
  Rng rng(313);
  std::set<Key> live;
  for (int i = 0; i < 600; ++i) {
    const int action = static_cast<int>(rng.Uniform(10));
    if (action < 6 || live.empty()) {
      const Key k = rng.Next64();
      if (file.Insert(k, rng.RandomBytes(1 + rng.Uniform(40))).ok()) {
        live.insert(k);
      }
    } else if (action < 8) {
      const Key k = *live.begin();
      ASSERT_TRUE(file.Update(k, rng.RandomBytes(1 + rng.Uniform(40))).ok());
    } else {
      const Key k = *live.begin();
      ASSERT_TRUE(file.Delete(k).ok());
      live.erase(k);
    }
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok()) << "after mixed workload";
  // Every live key still findable.
  for (Key k : live) EXPECT_TRUE(file.Search(k).ok());
}

TEST(LhrsBasicTest, GroupGeometryFollowsBucketNumbers) {
  LhrsFile file(SmallOptions(/*m=*/2, /*k=*/1, /*capacity=*/4));
  Rng rng(317);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), Val("x")).ok());
  }
  const BucketNo buckets = file.bucket_count();
  ASSERT_GT(buckets, 4u);
  for (BucketNo b = 0; b < buckets; ++b) {
    EXPECT_EQ(file.rs_bucket(b)->group(), b / 2);
    EXPECT_EQ(file.rs_bucket(b)->slot(), b % 2);
  }
  EXPECT_EQ(file.group_count(), (buckets + 1) / 2);
}

TEST(LhrsBasicTest, EveryGroupHasKParityBuckets) {
  LhrsFile file(SmallOptions(/*m=*/4, /*k=*/3, /*capacity=*/6));
  Rng rng(331);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), Val("x")).ok());
  }
  for (uint32_t g = 0; g < file.group_count(); ++g) {
    const auto& info = file.rs_coordinator().group_info(g);
    EXPECT_EQ(info.k, 3u);
    EXPECT_EQ(info.parity_nodes.size(), 3u);
    for (uint32_t j = 0; j < 3; ++j) {
      EXPECT_EQ(file.parity_bucket(g, j)->parity_index(), j);
    }
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(LhrsBasicTest, ScalableAvailabilityRaisesKForNewGroups) {
  LhrsFile::Options opts = SmallOptions(/*m=*/2, /*k=*/1, /*capacity=*/4);
  opts.policy.scale_thresholds = {8, 16};  // k=2 at M>=8, k=3 at M>=16.
  LhrsFile file(opts);
  Rng rng(337);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), Val("x")).ok());
  }
  ASSERT_GE(file.bucket_count(), 16u);
  EXPECT_EQ(file.rs_coordinator().group_info(0).k, 1u);
  const uint32_t last_group =
      static_cast<uint32_t>(file.group_count()) - 1;
  EXPECT_EQ(file.rs_coordinator().group_info(last_group).k, 3u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(LhrsBasicTest, StorageOverheadIsRoughlyKOverMWithoutSplits) {
  // Starting with m buckets and never splitting, ranks align across the
  // group's buckets and record groups fill up to m members: overhead
  // approaches k/m plus the parity records' key/length metadata.
  LhrsFile::Options no_split = SmallOptions(/*m=*/4, /*k=*/1,
                                            /*capacity=*/4000);
  no_split.file.initial_buckets = 4;
  LhrsFile file(no_split);
  Rng rng(347);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), rng.RandomBytes(256)).ok());
  }
  const StorageStats stats = file.GetStorageStats();
  EXPECT_GT(stats.ParityOverhead(), 0.20);
  EXPECT_LT(stats.ParityOverhead(), 0.40);
}

TEST(LhrsBasicTest, SplitsThinRecordGroupsAndRaiseOverhead) {
  // Splits move records into fresh ranks of new buckets, leaving partially
  // filled record groups behind; the measured overhead therefore sits
  // between k/m and k (documented in EXPERIMENTS.md alongside bench T1).
  LhrsFile file(SmallOptions(/*m=*/4, /*k=*/1, /*capacity=*/16));
  Rng rng(349);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), rng.RandomBytes(64)).ok());
  }
  const StorageStats stats = file.GetStorageStats();
  EXPECT_GT(stats.ParityOverhead(), 0.25);
  EXPECT_LT(stats.ParityOverhead(), 1.0);
}

TEST(LhrsBasicTest, InsertCostsOnePlusKParityMessages) {
  for (uint32_t k = 1; k <= 3; ++k) {
    LhrsFile file(SmallOptions(/*m=*/4, k, /*capacity=*/1000));
    Rng rng(351);
    // Warm up; then measure parity traffic per insert with no splits.
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(file.Insert(rng.Next64(), Val("x")).ok());
    }
    const auto before =
        file.network().stats().ForKind(LhrsMsg::kParityDelta);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(file.Insert(rng.Next64(), Val("x")).ok());
    }
    const auto after = file.network().stats().ForKind(LhrsMsg::kParityDelta);
    EXPECT_EQ(after.messages - before.messages, 100u * k) << "k=" << k;
  }
}

TEST(LhrsBasicTest, ReorderedClearOnlyRemovesItsOwnKey) {
  // Ranks are reused smallest-first, so one (rank, slot) sees the history
  // set(A), clear(A), set(B) — and a real transport can deliver it as
  // set(B), clear(A), set(A) (a retransmit delays the first two). The
  // stale clear must wait for its own key instead of removing B; the
  // displaced pair then cancels out once B's own clear drains it.
  LhrsFile file(SmallOptions(/*m=*/4, /*k=*/1));
  ParityBucketNode* pb = file.parity_bucket(0, 0);
  const Rank rank = 900;  // Far above anything real traffic allocates.
  const auto deliver = [&](ParityDelta::KeyOp op, Key key,
                           const std::string& xor_bytes) {
    auto body = std::make_unique<ParityDeltaMsg>();
    body->group = 0;
    body->delta.rank = rank;
    body->delta.slot = 2;
    body->delta.key_op = op;
    body->delta.key = key;
    body->delta.new_length = static_cast<uint32_t>(xor_bytes.size());
    body->delta.delta = BufferView::FromString(xor_bytes);
    Message msg;
    msg.to = pb->id();
    msg.body = std::move(body);
    pb->HandleMessage(msg);
  };
  deliver(ParityDelta::KeyOp::kSet, 222, "BBBB");
  deliver(ParityDelta::KeyOp::kClear, 111, "AAAA");  // Stale: buffers.
  deliver(ParityDelta::KeyOp::kSet, 111, "AAAA");    // Stale: buffers.
  {
    const auto& records = pb->parity_records();
    ASSERT_TRUE(records.contains(rank));
    EXPECT_EQ(records.at(rank).keys[2], Key{222});
    EXPECT_EQ(records.at(rank).parity, Val("BBBB"));
  }
  deliver(ParityDelta::KeyOp::kClear, 222, "BBBB");
  EXPECT_FALSE(pb->parity_records().contains(rank))
      << "the buffered stale set/clear pair must cancel to empty";
}

TEST(LhrsBasicTest, SearchTouchesNoParityBuckets) {
  LhrsFile file(SmallOptions(/*m=*/4, /*k=*/2, /*capacity=*/10));
  Rng rng(353);
  std::vector<Key> keys;
  for (int i = 0; i < 200; ++i) {
    keys.push_back(rng.Next64());
    ASSERT_TRUE(file.Insert(keys.back(), Val("x")).ok());
  }
  const auto before = file.network().stats().ForKindRange(200, 300);
  for (Key key : keys) ASSERT_TRUE(file.Search(key).ok());
  const auto after = file.network().stats().ForKindRange(200, 300);
  EXPECT_EQ(after.messages, before.messages)
      << "failure-free searches must not generate parity traffic";
}

TEST(LhrsBasicTest, ScanWorksOnLhrsFile) {
  LhrsFile file(SmallOptions(/*m=*/4, /*k=*/1, /*capacity=*/7));
  std::set<Key> keys;
  Rng rng(359);
  while (keys.size() < 150) keys.insert(rng.Next64());
  for (Key k : keys) ASSERT_TRUE(file.Insert(k, Val("x")).ok());
  auto scan = file.Scan();
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), keys.size());
}

TEST(LhrsBasicTest, FileStateRecoveryMatchesActualState) {
  LhrsFile file(SmallOptions(/*m=*/4, /*k=*/1, /*capacity=*/5));
  Rng rng(367);
  for (int i = 0; i < 137; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), Val("x")).ok());
  }
  auto recovered = file.RecoverFileState();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->i, file.coordinator().state().i);
  EXPECT_EQ(recovered->n, file.coordinator().state().n);
}

// Parameterized sweep: invariants must hold across (m, k) geometries.
class LhrsGeometryTest
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(LhrsGeometryTest, InvariantsHoldAfterGrowth) {
  const auto [m, k] = GetParam();
  LhrsFile file(SmallOptions(m, k, /*capacity=*/6));
  Rng rng(1000 + m * 10 + k);
  std::set<Key> keys;
  while (keys.size() < 250) keys.insert(rng.Next64());
  for (Key key : keys) {
    ASSERT_TRUE(file.Insert(key, rng.RandomBytes(1 + rng.Uniform(30))).ok());
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok()) << "m=" << m << " k=" << k;
  for (Key key : keys) EXPECT_TRUE(file.Search(key).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LhrsGeometryTest,
    ::testing::Values(std::pair{1u, 1u}, std::pair{2u, 1u}, std::pair{2u, 2u},
                      std::pair{3u, 2u}, std::pair{4u, 1u}, std::pair{4u, 2u},
                      std::pair{4u, 3u}, std::pair{8u, 1u}, std::pair{8u, 2u},
                      std::pair{16u, 2u}));

// The whole protocol stack over GF(2^16) symbols.
class LhrsFieldTest
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(LhrsFieldTest, Gf65536EndToEnd) {
  const auto [m, k] = GetParam();
  LhrsFile::Options opts = SmallOptions(m, k, /*capacity=*/8);
  opts.field = FieldChoice::kGf65536;
  LhrsFile file(opts);
  Rng rng(2000 + m * 10 + k);
  std::set<Key> keys;
  while (keys.size() < 200) keys.insert(rng.Next64());
  for (Key key : keys) {
    // Odd lengths exercise the symbol padding.
    ASSERT_TRUE(file.Insert(key, rng.RandomBytes(1 + rng.Uniform(33))).ok());
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok()) << "GF(2^16) m=" << m;
  // Crash + recover a bucket: the decode path over 16-bit symbols.
  const NodeId dead = file.CrashDataBucket(1);
  file.DetectAndRecover(dead);
  EXPECT_EQ(file.rs_coordinator().groups_lost(), 0u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  for (Key key : keys) EXPECT_TRUE(file.Search(key).ok());
}

INSTANTIATE_TEST_SUITE_P(Geometries, LhrsFieldTest,
                         ::testing::Values(std::pair{4u, 1u},
                                           std::pair{4u, 2u},
                                           std::pair{8u, 3u}));

}  // namespace
}  // namespace lhrs
