// Tests for the LH*g1 variant (paper section 4.4): records moved by splits
// receive new group keys in the new bucket's bucket group, making record
// groups bucket-local.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/lhg/lhg_file.h"
#include "common/rng.h"

namespace lhrs::lhg {
namespace {

Bytes Val(const std::string& s) { return BytesFromString(s); }

LhgFile::Options G1Opts(uint32_t k = 3, size_t capacity = 8) {
  LhgFile::Options opts;
  opts.file.bucket_capacity = capacity;
  opts.group_size = k;
  opts.reassign_group_keys_on_split = true;
  return opts;
}

std::vector<Key> Populate(LhgFile& file, int n, uint64_t seed) {
  Rng rng(seed);
  std::set<Key> keys;
  while (keys.size() < static_cast<size_t>(n)) keys.insert(rng.Next64());
  std::vector<Key> out(keys.begin(), keys.end());
  for (Key k : out) {
    EXPECT_TRUE(file.Insert(k, Val("value-" + std::to_string(k))).ok());
  }
  return out;
}

TEST(Lhg1FileTest, GroupLocalityHoldsAfterGrowth) {
  // The defining LH*g1 property: every record's group number equals its
  // current bucket's bucket group.
  LhgFile file(G1Opts());
  Populate(file, 250, 71);
  ASSERT_GT(file.bucket_count(), 9u);
  for (BucketNo b = 0; b < file.bucket_count(); ++b) {
    const LhgDataBucketNode* bucket = file.lhg_bucket(b);
    for (Key key : bucket->records().SortedKeys()) {
      EXPECT_EQ(bucket->group_key_of(key).g, b / 3)
          << "key " << key << " in bucket " << b;
    }
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(Lhg1FileTest, BasicLhgHasNoGroupLocality) {
  LhgFile::Options opts = G1Opts();
  opts.reassign_group_keys_on_split = false;
  LhgFile file(opts);
  Populate(file, 250, 71);
  ASSERT_GT(file.bucket_count(), 9u);
  bool found_foreign = false;
  for (BucketNo b = 0; b < file.bucket_count() && !found_foreign; ++b) {
    const LhgDataBucketNode* bucket = file.lhg_bucket(b);
    for (Key key : bucket->records().SortedKeys()) {
      if (bucket->group_key_of(key).g != b / 3) {
        found_foreign = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_foreign)
      << "basic LH*g should retain foreign group keys after splits";
}

TEST(Lhg1FileTest, SplitsCostParityTrafficUnlikeBasicLhg) {
  // LH*g1 trades ~2 parity messages per mover for the locality property.
  LhgFile basic_opts(G1Opts(3, 20));
  LhgFile::Options b = G1Opts(3, 20);
  b.reassign_group_keys_on_split = false;
  LhgFile basic(b);
  LhgFile& g1 = basic_opts;
  Rng rng1(73), rng2(73);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(g1.Insert(rng1.Next64(), Val("x")).ok());
    ASSERT_TRUE(basic.Insert(rng2.Next64(), Val("x")).ok());
  }
  const auto g1_updates =
      g1.network().stats().ForKind(LhgMsg::kParityUpdate).messages;
  const auto basic_updates =
      basic.network().stats().ForKind(LhgMsg::kParityUpdate).messages;
  EXPECT_GT(g1_updates, basic_updates + 100)
      << "LH*g1 splits should generate extra parity traffic";
  EXPECT_TRUE(g1.VerifyParityInvariants().ok());
  EXPECT_TRUE(basic.VerifyParityInvariants().ok());
}

TEST(Lhg1FileTest, MixedWorkloadKeepsInvariants) {
  LhgFile file(G1Opts(3, 7));
  Rng rng(79);
  std::set<Key> live;
  for (int i = 0; i < 500; ++i) {
    const int action = static_cast<int>(rng.Uniform(10));
    if (action < 7 || live.empty()) {
      const Key k = rng.Next64();
      if (file.Insert(k, rng.RandomBytes(1 + rng.Uniform(24))).ok()) {
        live.insert(k);
      }
    } else if (action < 9) {
      ASSERT_TRUE(
          file.Update(*live.begin(), rng.RandomBytes(1 + rng.Uniform(24)))
              .ok());
    } else {
      ASSERT_TRUE(file.Delete(*live.begin()).ok());
      live.erase(live.begin());
    }
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  for (Key k : live) EXPECT_TRUE(file.Search(k).ok());
}

TEST(Lhg1FileTest, RecoveryWorks) {
  LhgFile file(G1Opts(3, 10));
  std::vector<Key> keys = Populate(file, 150, 83);
  const BucketNo victim = file.bucket_count() - 1;
  const size_t victim_records = file.lhg_bucket(victim)->record_count();
  ASSERT_GT(victim_records, 0u);
  file.CrashDataBucket(victim);
  file.RecoverDataBucket(victim);
  EXPECT_EQ(file.lhg_bucket(victim)->record_count(), victim_records);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  for (Key k : keys) {
    EXPECT_TRUE(file.Search(k).ok());
  }
}

TEST(Lhg1FileTest, FailuresInDifferentGroupsAreIndependentlyRecoverable) {
  // The availability gain of LH*g1: with group locality, two failures in
  // *different* bucket groups never share a record group, so both recover.
  LhgFile file(G1Opts(3, 10));
  std::vector<Key> keys = Populate(file, 200, 89);
  ASSERT_GE(file.bucket_count(), 7u);
  // Buckets 1 (group 0) and 5 (group 1).
  file.CrashDataBucket(1);
  file.CrashDataBucket(5);
  file.RecoverDataBucket(1);
  file.RecoverDataBucket(5);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << got.status();
  }
}

}  // namespace
}  // namespace lhrs::lhg
