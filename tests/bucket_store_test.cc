// Unit tests for the slotted-segment BucketStore: arena packing, records
// spanning segment boundaries, tombstone accounting, compaction under
// outstanding readers, and deterministic iteration.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/buffer.h"
#include "common/bytes.h"
#include "store/bucket_store.h"

namespace lhrs::store {
namespace {

Bytes Val(uint8_t fill, size_t n) { return Bytes(n, fill); }

TEST(BucketStoreTest, InsertFindEraseRoundTrip) {
  BucketStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_TRUE(store.Insert(7, Val(0xAB, 10)));
  EXPECT_FALSE(store.Insert(7, Val(0xCD, 3)));  // Duplicate rejected.
  ASSERT_NE(store.Find(7), nullptr);
  EXPECT_EQ(store.Find(7)->ToBytes(), Val(0xAB, 10));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.payload_bytes(), 10u);
  EXPECT_TRUE(store.Erase(7));
  EXPECT_FALSE(store.Erase(7));
  EXPECT_EQ(store.Find(7), nullptr);
  EXPECT_TRUE(store.empty());
}

TEST(BucketStoreTest, PutOverwritesAndTombstonesOldPayload) {
  BucketStore store;
  store.Put(1, BufferView(Val(0x11, 8)));
  store.Put(1, BufferView(Val(0x22, 16)));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.Find(1)->ToBytes(), Val(0x22, 16));
  const auto stats = store.GetStats();
  EXPECT_EQ(stats.live_bytes, 16u);
  EXPECT_EQ(stats.dead_bytes, 8u);
}

TEST(BucketStoreTest, RecordsSpanSegmentBoundaries) {
  // 128-byte segments, 48-byte records: the third record does not fit the
  // first segment's remainder and must open a new one; nothing is lost.
  BucketStore store(/*segment_capacity=*/128);
  for (uint64_t k = 0; k < 12; ++k) {
    ASSERT_TRUE(store.Insert(k, Val(static_cast<uint8_t>(k), 48)));
  }
  EXPECT_GT(store.GetStats().segments, 1u);
  for (uint64_t k = 0; k < 12; ++k) {
    ASSERT_NE(store.Find(k), nullptr) << "key " << k;
    EXPECT_EQ(store.Find(k)->ToBytes(), Val(static_cast<uint8_t>(k), 48));
  }
}

TEST(BucketStoreTest, OversizedRecordGetsDedicatedSegment) {
  BucketStore store(/*segment_capacity=*/64);
  ASSERT_TRUE(store.Insert(1, Val(0x5A, 1000)));  // 15x the segment size.
  ASSERT_TRUE(store.Insert(2, Val(0x10, 8)));     // Small one right after.
  EXPECT_EQ(store.Find(1)->size(), 1000u);
  EXPECT_EQ(store.Find(1)->ToBytes(), Val(0x5A, 1000));
  EXPECT_EQ(store.Find(2)->ToBytes(), Val(0x10, 8));
}

TEST(BucketStoreTest, InsertSharedAdoptsWithoutCopy) {
  BucketStore store;
  BufferView v(Val(0x77, 32));
  const uint8_t* payload = v.data();
  ASSERT_TRUE(store.InsertShared(5, v));
  // Zero-copy adoption: the store serves the very same bytes.
  EXPECT_EQ(store.Find(5)->data(), payload);
}

TEST(BucketStoreTest, SortedKeysIsDeterministicAscending) {
  BucketStore store;
  for (uint64_t k : {9u, 3u, 27u, 1u, 14u}) {
    store.Insert(k, Val(1, 4));
  }
  EXPECT_EQ(store.SortedKeys(), (std::vector<uint64_t>{1, 3, 9, 14, 27}));
  std::vector<uint64_t> visited;
  store.ForEachOrdered(
      [&](uint64_t k, const BufferView&) { visited.push_back(k); });
  EXPECT_EQ(visited, store.SortedKeys());
}

TEST(BucketStoreTest, CompactionReclaimsDeadBytesAndKeepsLiveSet) {
  BucketStore store(/*segment_capacity=*/256);
  for (uint64_t k = 0; k < 64; ++k) {
    store.Insert(k, Val(static_cast<uint8_t>(k), 32));
  }
  for (uint64_t k = 0; k < 64; k += 2) store.Erase(k);
  store.Compact();
  const auto stats = store.GetStats();
  EXPECT_EQ(stats.dead_bytes, 0u);
  EXPECT_EQ(stats.live_records, 32u);
  EXPECT_GE(stats.compactions, 1u);
  for (uint64_t k = 1; k < 64; k += 2) {
    ASSERT_NE(store.Find(k), nullptr);
    EXPECT_EQ(store.Find(k)->ToBytes(), Val(static_cast<uint8_t>(k), 32));
  }
}

TEST(BucketStoreTest, OutstandingViewsSurviveCompaction) {
  // A reader that grabbed views before a compaction (a recovery dump, a
  // wire message in flight) must keep seeing the original bytes: the
  // ref-counted segment stays alive until the last view drops.
  BucketStore store(/*segment_capacity=*/128);
  for (uint64_t k = 0; k < 16; ++k) {
    store.Insert(k, Val(static_cast<uint8_t>(0xA0 + k), 24));
  }
  std::vector<BufferView> held;
  store.ForEachOrdered(
      [&](uint64_t, const BufferView& v) { held.push_back(v); });
  for (uint64_t k = 0; k < 8; ++k) store.Erase(k);
  store.Compact();
  for (size_t i = 0; i < held.size(); ++i) {
    EXPECT_EQ(held[i].ToBytes(), Val(static_cast<uint8_t>(0xA0 + i), 24))
        << "held view " << i << " corrupted by compaction";
  }
}

TEST(BucketStoreTest, AutoCompactionTriggersUnderDeadBytes) {
  // Dead bytes must both exceed the threshold and outweigh live bytes;
  // churn a store hard enough and compaction fires on its own.
  BucketStore store;
  for (int round = 0; round < 40; ++round) {
    for (uint64_t k = 0; k < 16; ++k) {
      store.Put(k, BufferView(Val(static_cast<uint8_t>(round), 256)));
    }
  }
  EXPECT_GE(store.GetStats().compactions, 1u);
  for (uint64_t k = 0; k < 16; ++k) {
    EXPECT_EQ(store.Find(k)->ToBytes(), Val(39, 256));
  }
}

TEST(BucketStoreTest, MutationDuringOrderedIterationSkipsErased) {
  BucketStore store;
  for (uint64_t k = 0; k < 10; ++k) store.Insert(k, Val(1, 4));
  std::vector<uint64_t> visited;
  store.ForEachOrdered([&](uint64_t k, const BufferView&) {
    visited.push_back(k);
    if (k == 3) store.Erase(7);  // Mid-split-style mutation.
  });
  // 7 was erased after the snapshot but before its visit: skipped.
  EXPECT_EQ(visited, (std::vector<uint64_t>{0, 1, 2, 3, 4, 5, 6, 8, 9}));
}

TEST(BucketStoreTest, ReaderDuringCompactionMidIteration) {
  // A reader holding views can trigger compaction midway (the recovery
  // path reads from a bucket whose auto-compaction fires): earlier views
  // stay valid, later reads see the repacked live set.
  BucketStore store(/*segment_capacity=*/256);
  for (uint64_t k = 0; k < 32; ++k) {
    store.Insert(k, Val(static_cast<uint8_t>(k), 16));
  }
  std::vector<std::pair<uint64_t, BufferView>> dump;
  store.ForEachOrdered([&](uint64_t k, const BufferView& v) {
    dump.emplace_back(k, v);
    if (k == 15) store.Compact();
  });
  ASSERT_EQ(dump.size(), 32u);
  for (const auto& [k, v] : dump) {
    EXPECT_EQ(v.ToBytes(), Val(static_cast<uint8_t>(k), 16)) << "key " << k;
  }
}

TEST(BucketStoreTest, ClearDropsEverything) {
  BucketStore store;
  for (uint64_t k = 0; k < 5; ++k) store.Insert(k, Val(2, 8));
  store.Clear();
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.payload_bytes(), 0u);
  EXPECT_EQ(store.GetStats().segments, 0u);
  // Reusable after Clear.
  EXPECT_TRUE(store.Insert(1, Val(3, 8)));
  EXPECT_EQ(store.Find(1)->ToBytes(), Val(3, 8));
}

}  // namespace
}  // namespace lhrs::store
