// Chaos-engine tests: scripted fault schedules, probabilistic message
// faults, client retry resilience, and the headline property — a drill is
// a pure function of (workload, plan): same seed, byte-identical replay.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/chaos.h"
#include "common/rng.h"
#include "lhrs/lhrs_file.h"

namespace lhrs {
namespace {

using chaos::FaultKind;
using chaos::FaultPlan;

Bytes Val(const std::string& s) { return BytesFromString(s); }

LhrsFile::Options Opts(uint32_t m, uint32_t k, size_t capacity = 8) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = capacity;
  opts.group_size = m;
  opts.policy.base_k = k;
  return opts;
}

ClientRetryPolicy Resilient(uint64_t seed = 7) {
  ClientRetryPolicy policy;
  policy.enabled = true;
  policy.seed = seed;
  return policy;
}

std::vector<Key> MakeKeys(int n, uint64_t seed) {
  Rng rng(seed);
  std::set<Key> keys;
  while (keys.size() < static_cast<size_t>(n)) keys.insert(rng.Next64());
  return {keys.begin(), keys.end()};
}

TEST(FaultPlanTest, BuildersFillRulesAndHorizon) {
  FaultPlan plan;
  plan.seed = 99;
  plan.CrashAt(1000, 3)
      .RestoreAt(5000, 3)
      .CrashGroupAt(2000, 0, 2)
      .DropMessages(0.05)
      .DuplicateMessages(0.1, 100, 900)
      .DelayMessages(0.2, 300, 200)
      .ReorderMessages(0.3, 500)
      .SlowNode(4, 3.0);
  EXPECT_EQ(plan.schedule.size(), 3u);
  EXPECT_EQ(plan.rules.size(), 5u);
  EXPECT_EQ(plan.Horizon(), 5000u);
  const std::string desc = plan.Describe();
  EXPECT_NE(desc.find("crash_group"), std::string::npos);
  EXPECT_NE(desc.find("slow_node"), std::string::npos);

  Message msg;
  msg.from = 1;
  msg.to = 4;
  auto body = std::make_unique<OpRequestMsg>();
  msg.body = std::move(body);
  // SlowNode's rule matches either endpoint; the window gates matching.
  EXPECT_TRUE(plan.rules[4].Matches(msg, 0));
  msg.to = 9;
  msg.from = 9;
  EXPECT_FALSE(plan.rules[4].Matches(msg, 0));
  EXPECT_TRUE(plan.rules[1].Matches(msg, 100));   // Duplicate window.
  EXPECT_FALSE(plan.rules[1].Matches(msg, 900));  // End-exclusive.
}

TEST(ChaosEngineTest, ScheduledCrashAndRestoreFire) {
  LhrsFile file(Opts(4, 1));
  std::vector<Key> keys = MakeKeys(40, 11);
  for (Key k : keys) {
    ASSERT_TRUE(file.Insert(k, Val("v" + std::to_string(k))).ok());
  }
  const NodeId victim = file.context().allocation.Lookup(1);

  FaultPlan plan;
  plan.CrashAt(1000, victim).RestoreAt(200000, victim);
  chaos::ChaosEngine& engine = file.AttachChaos(std::move(plan));
  EXPECT_TRUE(file.chaos_attached());
  file.PlayOutChaos();
  EXPECT_EQ(engine.injected(FaultKind::kCrash), 1u);
  EXPECT_EQ(engine.injected(FaultKind::kRestore), 1u);
  EXPECT_TRUE(file.network().available(victim));
  file.DetachChaos();
  EXPECT_FALSE(file.chaos_attached());

  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, Val("v" + std::to_string(k)));
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(ChaosEngineTest, CrashGroupMidWorkloadLosesNothing) {
  // The acceptance scenario: k members of one bucket group die at a
  // scripted instant while inserts are in flight; the file must end with
  // every record present exactly once.
  LhrsFile file(Opts(4, 2));  // 2-available: survives 2 failures/group.
  file.client(0).SetRetryPolicy(Resilient());
  std::vector<Key> keys = MakeKeys(140, 21);

  // Seed a third of the workload, then arm the group crash shortly ahead
  // of the remaining inserts.
  size_t i = 0;
  for (; i < keys.size() / 3; ++i) {
    ASSERT_TRUE(file.Insert(keys[i], Val("v" + std::to_string(keys[i]))).ok());
  }
  FaultPlan plan;
  plan.seed = 5;
  plan.CrashGroupAt(3000, 0, 2);
  chaos::ChaosEngine& engine = file.AttachChaos(std::move(plan));
  for (; i < keys.size(); ++i) {
    ASSERT_TRUE(file.Insert(keys[i], Val("v" + std::to_string(keys[i]))).ok())
        << "insert " << i;
  }
  file.PlayOutChaos();
  EXPECT_EQ(engine.injected(FaultKind::kCrashGroup), 1u);
  file.DetachChaos();
  file.RecoverAll();

  // Zero lost and zero duplicated records: scan the whole file.
  auto scan = file.Scan();
  ASSERT_TRUE(scan.ok()) << scan.status();
  std::set<Key> seen;
  for (const WireRecord& rec : *scan) {
    EXPECT_TRUE(seen.insert(rec.key).second)
        << "duplicate record " << rec.key;
  }
  EXPECT_EQ(seen.size(), keys.size());
  for (Key k : keys) EXPECT_TRUE(seen.contains(k)) << "lost record " << k;
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(ChaosEngineTest, DropRateWithRetriesStillConverges) {
  // 5% uniform message loss over the whole run. The client's bounded
  // retries plus the parity-delta retransmissions must absorb it.
  LhrsFile file(Opts(4, 1));
  file.network().EnableTelemetry();
  file.client(0).SetRetryPolicy(Resilient());
  std::vector<Key> keys = MakeKeys(120, 31);

  FaultPlan plan;
  plan.seed = 17;
  plan.DropMessages(0.05);
  chaos::ChaosEngine& engine = file.AttachChaos(std::move(plan));
  for (Key k : keys) {
    ASSERT_TRUE(file.Insert(k, Val("v" + std::to_string(k))).ok());
  }
  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, Val("v" + std::to_string(k)));
  }
  // DetachChaos destroys the engine; read its counter first.
  const uint64_t drops_injected = engine.injected(FaultKind::kDrop);
  EXPECT_GT(drops_injected, 0u);
  file.DetachChaos();

  // Retries/backoffs surface as telemetry counters.
  telemetry::MetricsRegistry& m = file.network().telemetry()->metrics();
  EXPECT_GT(file.client(0).retries(), 0u);
  EXPECT_EQ(m.GetCounter("client.retries").value(),
            file.client(0).retries());
  EXPECT_EQ(m.GetCounter(telemetry::Labeled("chaos.faults_injected", "kind",
                                            "drop"))
                .value(),
            drops_injected);

  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << got.status();
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(ChaosEngineTest, DuplicatedRepliesAreSuppressed) {
  LhrsFile file(Opts(4, 1));
  file.client(0).SetRetryPolicy(Resilient());
  std::vector<Key> keys = MakeKeys(60, 41);

  FaultPlan plan;
  plan.seed = 23;
  plan.DuplicateMessages(0.5);
  file.AttachChaos(std::move(plan));
  for (Key k : keys) {
    ASSERT_TRUE(file.Insert(k, Val("v" + std::to_string(k))).ok());
  }
  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, Val("v" + std::to_string(k)));
  }
  EXPECT_GT(file.chaos()->injected(FaultKind::kDuplicate), 0u);
  EXPECT_GT(file.client(0).duplicates_suppressed(), 0u);
  file.DetachChaos();
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(ChaosEngineTest, SlowNodeStretchesLatencyWithoutBreakingOps) {
  LhrsFile file(Opts(4, 1));
  std::vector<Key> keys = MakeKeys(30, 51);
  for (Key k : keys) {
    ASSERT_TRUE(file.Insert(k, Val("v" + std::to_string(k))).ok());
  }
  const NodeId slow = file.context().allocation.Lookup(0);

  const SimTime t0 = file.network().now();
  for (Key k : keys) ASSERT_TRUE(file.Search(k).ok());
  const SimTime baseline = file.network().now() - t0;

  FaultPlan plan;
  plan.SlowNode(slow, 8.0);
  file.AttachChaos(std::move(plan));
  const SimTime t1 = file.network().now();
  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, Val("v" + std::to_string(k)));
  }
  const SimTime slowed = file.network().now() - t1;
  EXPECT_GT(file.chaos()->injected(FaultKind::kSlowNode), 0u);
  EXPECT_GT(slowed, baseline);
  file.DetachChaos();
}

/// One full drill: seeded workload under a composite plan. Returns the
/// telemetry trace JSON plus a digest of the final file contents.
struct DrillResult {
  std::string trace_json;
  std::string final_state;
  uint64_t faults = 0;
};

DrillResult RunDrill(uint64_t plan_seed) {
  LhrsFile::Options opts = Opts(4, 2);
  LhrsFile file(opts);
  file.network().EnableTelemetry();
  file.client(0).SetRetryPolicy(Resilient());

  std::vector<Key> keys = MakeKeys(100, 61);
  size_t i = 0;
  for (; i < keys.size() / 2; ++i) {
    EXPECT_TRUE(file.Insert(keys[i], Val("v" + std::to_string(keys[i]))).ok());
  }
  const NodeId victim = file.context().allocation.Lookup(2);

  FaultPlan plan;
  plan.seed = plan_seed;
  plan.CrashAt(2000, victim)
      .RestoreAt(400000, victim)
      .CrashGroupAt(5000, 0, 1)
      .DropMessages(0.03)
      .DuplicateMessages(0.05)
      .ReorderMessages(0.1, 400);
  chaos::ChaosEngine& engine = file.AttachChaos(std::move(plan));
  // Mid-outage inserts may exhaust their bounded retries (the victim stays
  // down far longer than the retry budget) — the client surfaces that
  // honestly and the application re-issues after recovery.
  std::vector<Key> deferred;
  for (; i < keys.size(); ++i) {
    if (!file.Insert(keys[i], Val("v" + std::to_string(keys[i]))).ok()) {
      deferred.push_back(keys[i]);
    }
  }
  file.PlayOutChaos();
  DrillResult result;
  result.faults = engine.injected_total();
  file.DetachChaos();
  file.RecoverAll();
  for (Key k : deferred) {
    // kAlreadyExists means the "failed" insert did land server-side — the
    // at-least-once ambiguity the drill is designed to exercise.
    const Status s = file.Insert(k, Val("v" + std::to_string(k)));
    EXPECT_TRUE(s.ok() || s.IsAlreadyExists()) << s;
  }

  result.trace_json = file.network().telemetry()->tracer().ToJson();
  for (Key k : keys) {
    auto got = file.Search(k);
    EXPECT_TRUE(got.ok()) << got.status();
    result.final_state += std::to_string(k) + "=" +
                          (got.ok() ? ToHex(*got) : "?") + ";";
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  return result;
}

TEST(ChaosEngineTest, SameSeedReplaysByteIdentically) {
  const DrillResult a = RunDrill(77);
  const DrillResult b = RunDrill(77);
  EXPECT_GT(a.faults, 0u);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.final_state, b.final_state);
  // The whole telemetry trace — every send, delivery, fault and recovery
  // event with its timestamp — is byte-identical.
  EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(ChaosEngineTest, DifferentSeedDivergesButStillConverges) {
  const DrillResult a = RunDrill(77);
  const DrillResult c = RunDrill(78);
  // Same records survive under any seed (the resilience claim)...
  EXPECT_EQ(a.final_state, c.final_state);
  // ...but the fault pattern differs (the seed actually matters).
  EXPECT_NE(a.trace_json, c.trace_json);
}

}  // namespace
}  // namespace lhrs
