// Tests for the LH*m (mirroring) and LH*s (striping) baselines.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/lhm/lhm_file.h"
#include "baselines/lhs/lhs_file.h"
#include "common/rng.h"

namespace lhrs {
namespace {

Bytes Val(const std::string& s) { return BytesFromString(s); }

// --- LH*m -------------------------------------------------------------------

lhm::LhmFile::Options LhmOpts(size_t capacity = 8) {
  lhm::LhmFile::Options opts;
  opts.file.bucket_capacity = capacity;
  return opts;
}

TEST(LhmFileTest, BasicOperations) {
  lhm::LhmFile file(LhmOpts());
  ASSERT_TRUE(file.Insert(1, Val("one")).ok());
  ASSERT_TRUE(file.Insert(2, Val("two")).ok());
  ASSERT_TRUE(file.Update(1, Val("uno")).ok());
  auto got = file.Search(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Val("uno"));
  ASSERT_TRUE(file.Delete(2).ok());
  EXPECT_TRUE(file.Search(2).status().IsNotFound());
  EXPECT_TRUE(file.VerifyMirrorInvariant().ok());
}

TEST(LhmFileTest, ReplicasStayIdenticalUnderGrowth) {
  lhm::LhmFile file(LhmOpts(6));
  Rng rng(71);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), rng.RandomBytes(20)).ok());
  }
  EXPECT_GT(file.bucket_count(), 8u);
  EXPECT_TRUE(file.VerifyMirrorInvariant().ok());
}

TEST(LhmFileTest, StorageOverheadIsOneHundredPercent) {
  lhm::LhmFile file(LhmOpts(1000));
  Rng rng(73);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), rng.RandomBytes(64)).ok());
  }
  const StorageStats stats = file.GetStorageStats();
  EXPECT_NEAR(stats.ParityOverhead(), 1.0, 0.01);
}

TEST(LhmFileTest, SearchServedByMirrorDuringOutage) {
  lhm::LhmFile file(LhmOpts(10));
  Rng rng(79);
  std::vector<Key> keys;
  for (int i = 0; i < 120; ++i) {
    keys.push_back(rng.Next64());
    ASSERT_TRUE(file.Insert(keys.back(), Val("v" + std::to_string(i))).ok());
  }
  file.CrashPrimaryBucket(1);
  for (size_t i = 0; i < keys.size(); ++i) {
    auto got = file.Search(keys[i]);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, Val("v" + std::to_string(i)));
  }
  EXPECT_GE(file.primary_coordinator().recoveries_completed(), 1u);
  EXPECT_TRUE(file.VerifyMirrorInvariant().ok());
}

TEST(LhmFileTest, ExplicitRecoveryCopiesBucket) {
  lhm::LhmFile file(LhmOpts(10));
  Rng rng(83);
  std::vector<Key> keys;
  for (int i = 0; i < 100; ++i) {
    keys.push_back(rng.Next64());
    ASSERT_TRUE(file.Insert(keys.back(), Val("x")).ok());
  }
  const NodeId dead = file.CrashPrimaryBucket(0);
  file.RecoverPrimaryBucket(0);
  (void)dead;
  EXPECT_TRUE(file.VerifyMirrorInvariant().ok());
  for (Key k : keys) EXPECT_TRUE(file.Search(k).ok());
}

// --- LH*s -------------------------------------------------------------------

lhs::LhsFile::Options LhsOpts(uint32_t k = 4, size_t capacity = 16) {
  lhs::LhsFile::Options opts;
  opts.file.bucket_capacity = capacity;
  opts.stripe_count = k;
  return opts;
}

TEST(LhsFileTest, StripingRoundTripsAllLengths) {
  for (size_t len : {0, 1, 3, 4, 5, 16, 17, 100, 1023}) {
    Rng rng(89 + len);
    const Bytes value = rng.RandomBytes(len);
    for (uint32_t k : {1u, 2u, 3u, 4u, 7u}) {
      auto stripes = lhs::LhsFile::StripeValue(value, k);
      ASSERT_EQ(stripes.size(), k + 1u);
      EXPECT_EQ(lhs::LhsFile::AssembleValue(stripes, k), value)
          << "len=" << len << " k=" << k;
      // Any single missing stripe reconstructs from parity.
      for (uint32_t missing = 0; missing < k; ++missing) {
        std::vector<const Bytes*> present(k, nullptr);
        for (uint32_t s = 0; s < k; ++s) {
          if (s != missing) present[s] = &stripes[s];
        }
        const Bytes rebuilt = lhs::LhsFile::ReconstructStripe(
            present, stripes[k], k, missing);
        EXPECT_EQ(rebuilt, stripes[missing]);
      }
    }
  }
}

TEST(LhsFileTest, BasicOperations) {
  lhs::LhsFile file(LhsOpts());
  ASSERT_TRUE(file.Insert(1, Val("a striped value of some length")).ok());
  auto got = file.Search(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Val("a striped value of some length"));
  ASSERT_TRUE(file.Update(1, Val("short")).ok());
  got = file.Search(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Val("short"));
  ASSERT_TRUE(file.Delete(1).ok());
  EXPECT_TRUE(file.Search(1).status().IsNotFound());
}

TEST(LhsFileTest, ManyRecordsSurviveGrowth) {
  lhs::LhsFile file(LhsOpts(3, 8));
  Rng rng(97);
  std::set<Key> keys;
  while (keys.size() < 120) keys.insert(rng.Next64());
  for (Key k : keys) {
    ASSERT_TRUE(file.Insert(k, rng.RandomBytes(30 + k % 40)).ok());
  }
  Rng rng2(97);  // Re-derive the same value lengths for verification.
  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->size(), 30 + k % 40);
  }
}

TEST(LhsFileTest, DegradedReadReconstructsFromParity) {
  lhs::LhsFile file(LhsOpts(4, 1000));
  Rng rng(101);
  const Bytes value = rng.RandomBytes(257);
  ASSERT_TRUE(file.Insert(42, value).ok());
  file.CrashStripeBucketOf(2, 42);
  auto got = file.Search(42);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, value);
}

TEST(LhsFileTest, TwoStripeFailuresAreFatal) {
  lhs::LhsFile file(LhsOpts(4, 1000));
  ASSERT_TRUE(file.Insert(42, Bytes(100, 7)).ok());
  file.CrashStripeBucketOf(1, 42);
  file.CrashStripeBucketOf(3, 42);
  auto got = file.Search(42);
  EXPECT_TRUE(got.status().IsDataLoss()) << got.status();
}

TEST(LhsFileTest, StorageOverheadAboutOneOverK) {
  lhs::LhsFile file(LhsOpts(4, 100000));
  Rng rng(103);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), rng.RandomBytes(256)).ok());
  }
  const StorageStats stats = file.GetStorageStats();
  // Parity stripe = 1/k of data volume (plus per-stripe prefix overhead).
  EXPECT_GT(stats.ParityOverhead(), 0.20);
  EXPECT_LT(stats.ParityOverhead(), 0.35);
}

TEST(LhsFileTest, DeadStripeBucketRebuiltFromSiblings) {
  lhs::LhsFile file(LhsOpts(4, 8));
  Rng rng(109);
  std::vector<Key> keys;
  std::vector<Bytes> values;
  for (int i = 0; i < 120; ++i) {
    keys.push_back(rng.Next64());
    values.push_back(rng.RandomBytes(40 + rng.Uniform(30)));
    ASSERT_TRUE(file.Insert(keys.back(), values.back()).ok());
  }
  // Kill one stripe bucket; writes and reads keep completing: ops park,
  // the coordinator XOR-rebuilds the bucket from the sibling files, and
  // the parked ops are served.
  file.CrashStripeBucketOf(1, keys[0]);
  for (size_t i = 0; i < keys.size(); ++i) {
    auto got = file.Search(keys[i]);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, values[i]);
  }
  // And updates now go through the rebuilt bucket too.
  ASSERT_TRUE(file.Update(keys[0], Bytes(50, 0xAB)).ok());
  auto got = file.Search(keys[0]);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Bytes(50, 0xAB));
}

TEST(LhsFileTest, DualStripeColumnLossFailsLoudly) {
  lhs::LhsFile file(LhsOpts(4, 1000));
  ASSERT_TRUE(file.Insert(42, Bytes(100, 7)).ok());
  file.CrashStripeBucketOf(1, 42);
  file.CrashStripeBucketOf(3, 42);
  // The rebuild of stripe 1's bucket needs stripe 3's dead bucket: the op
  // must come back as loud data loss, not hang.
  auto got = file.Search(42);
  EXPECT_TRUE(got.status().IsDataLoss()) << got.status();
}

TEST(LhsFileTest, SearchCostsKStripeFetches) {
  lhs::LhsFile file(LhsOpts(4, 100000));
  Rng rng(107);
  std::vector<Key> keys;
  for (int i = 0; i < 50; ++i) {
    keys.push_back(rng.Next64());
    ASSERT_TRUE(file.Insert(keys.back(), rng.RandomBytes(64)).ok());
  }
  const uint64_t before = file.network().stats().total_messages();
  for (Key k : keys) ASSERT_TRUE(file.Search(k).ok());
  const uint64_t after = file.network().stats().total_messages();
  const double per_search = static_cast<double>(after - before) / 50.0;
  // k requests + k replies = 8 messages per search (vs 2 for LH*RS).
  EXPECT_NEAR(per_search, 8.0, 0.5);
}

}  // namespace
}  // namespace lhrs
