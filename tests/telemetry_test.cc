// Tests for the telemetry subsystem: histogram bucketing and percentile
// math, the bounded trace ring, run reports, per-node message attribution,
// determinism of the exported JSON across identical seeded runs, and the
// zero-overhead disabled path.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lhrs/lhrs_file.h"
#include "net/network.h"
#include "net/stats.h"
#include "telemetry/metrics.h"
#include "telemetry/probe.h"
#include "telemetry/run_report.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace lhrs {
namespace {

using telemetry::Histogram;
using telemetry::Labeled;
using telemetry::MetricsRegistry;
using telemetry::RunReport;
using telemetry::TraceEvent;
using telemetry::TraceEventType;
using telemetry::Tracer;

// --- Histogram bucket layout ---------------------------------------------

TEST(HistogramTest, SmallValuesGetExactBuckets) {
  // Values below 2^kSubBits = 8 each own one bucket.
  for (uint64_t v = 0; v < Histogram::kSub; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketLowerBound(v), v);
    EXPECT_EQ(Histogram::BucketUpperBound(v), v);
  }
}

TEST(HistogramTest, OctaveBoundaries) {
  // 8..15 is the first sub-bucketed octave: stride 1, so still exact.
  EXPECT_EQ(Histogram::BucketIndex(8), 8u);
  EXPECT_EQ(Histogram::BucketIndex(15), 15u);
  // 16..31 has stride 2: 16 starts a bucket, 17 shares it.
  const size_t b16 = Histogram::BucketIndex(16);
  EXPECT_EQ(Histogram::BucketIndex(17), b16);
  EXPECT_NE(Histogram::BucketIndex(18), b16);
  EXPECT_EQ(Histogram::BucketLowerBound(b16), 16u);
  EXPECT_EQ(Histogram::BucketUpperBound(b16), 17u);
  // Each bucket's bounds must tile the value axis without gaps.
  for (size_t i = 0; i + 1 < 64; ++i) {
    EXPECT_EQ(Histogram::BucketUpperBound(i) + 1,
              Histogram::BucketLowerBound(i + 1))
        << "gap after bucket " << i;
  }
}

TEST(HistogramTest, BucketIndexMatchesBounds) {
  // Round-trip: every probed value must land in a bucket whose [lower,
  // upper] range contains it, bounding the quantization error to 12.5%.
  for (uint64_t v : {0ull, 1ull, 7ull, 8ull, 100ull, 1023ull, 1024ull,
                     123456ull, 1ull << 40}) {
    const size_t i = Histogram::BucketIndex(v);
    EXPECT_GE(v, Histogram::BucketLowerBound(i)) << v;
    EXPECT_LE(v, Histogram::BucketUpperBound(i)) << v;
    const double width = static_cast<double>(Histogram::BucketUpperBound(i) -
                                             Histogram::BucketLowerBound(i));
    EXPECT_LE(width / std::max<uint64_t>(v, 1), 0.125001) << v;
  }
}

TEST(HistogramTest, CountSumMinMaxMean) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(HistogramTest, PercentilesOnExactBuckets) {
  // 100 samples of values 0..7 (exact buckets): percentiles are exact.
  Histogram h;
  for (int rep = 0; rep < 100; ++rep) h.Record(rep % 8);
  EXPECT_EQ(h.p50(), 3u);   // 50th of 0,0,...,7: ceil(0.5*100)=50th -> 3.
  EXPECT_EQ(h.p99(), 7u);
  EXPECT_EQ(h.Percentile(0), 0u);
  EXPECT_EQ(h.Percentile(100), 7u);
}

TEST(HistogramTest, PercentileClampedToObservedRange) {
  Histogram h;
  h.Record(1000);  // One sample: every percentile is that sample.
  EXPECT_EQ(h.p50(), 1000u);
  EXPECT_EQ(h.p99(), 1000u);
  EXPECT_EQ(h.Percentile(1), 1000u);
}

TEST(HistogramTest, MergeFoldsCountsAndExtremes) {
  Histogram a;
  Histogram b;
  a.Record(5);
  a.Record(100);
  b.Record(1);
  b.Record(100000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 100000u);
  EXPECT_EQ(a.sum(), 5u + 100u + 1u + 100000u);
}

// --- Metrics registry ------------------------------------------------------

TEST(MetricsRegistryTest, GetOrCreateAndFind) {
  MetricsRegistry r;
  r.GetCounter("a").Add(3);
  r.GetCounter("a").Add(2);  // Same counter.
  EXPECT_EQ(r.FindCounter("a")->value(), 5u);
  EXPECT_EQ(r.FindCounter("missing"), nullptr);
  r.GetGauge("g").Set(-7);
  EXPECT_EQ(r.FindGauge("g")->value(), -7);
  r.GetHistogram("h").Record(9);
  EXPECT_EQ(r.FindHistogram("h")->count(), 1u);
  EXPECT_EQ(r.size(), 3u);
}

TEST(MetricsRegistryTest, LabeledNames) {
  EXPECT_EQ(Labeled("net.sent", "kind", "OpRequest"),
            "net.sent{kind=OpRequest}");
  EXPECT_EQ(Labeled("net.sent", "node", int64_t{12}), "net.sent{node=12}");
  EXPECT_EQ(Labeled("x", "a", "1", "b", "2"), "x{a=1,b=2}");
}

TEST(MetricsRegistryTest, JsonIsSortedAndStable) {
  MetricsRegistry r;
  r.GetCounter("zz").Add(1);
  r.GetCounter("aa").Add(2);
  const std::string json = r.ToJson();
  EXPECT_LT(json.find("\"aa\""), json.find("\"zz\""));
  // Re-exporting yields the identical string.
  EXPECT_EQ(json, r.ToJson());
}

// --- Trace ring ------------------------------------------------------------

TEST(TracerTest, RingOverflowDropsOldest) {
  Tracer t(4);
  for (uint64_t i = 0; i < 6; ++i) {
    t.Record({i, TraceEventType::kCrash, static_cast<int32_t>(i), -1, -1,
              -1, 0});
  }
  EXPECT_EQ(t.capacity(), 4u);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 2u);
  const std::vector<TraceEvent> events = t.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, events 0 and 1 were overwritten.
  EXPECT_EQ(events.front().time_us, 2u);
  EXPECT_EQ(events.back().time_us, 5u);
}

TEST(TracerTest, JsonExportsPhaseNames) {
  Tracer t(8);
  t.Record({10, TraceEventType::kRecoveryPhaseBegin, 0, -1, -1, 2,
            static_cast<int64_t>(telemetry::RecoveryPhase::kRead)});
  const std::string json = t.ToJson();
  EXPECT_NE(json.find("\"phase\":\"read\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"group\":2"), std::string::npos) << json;
}

TEST(TracerTest, ChromeTraceBalancesBeginEnd) {
  Tracer t(16);
  t.Record({10, TraceEventType::kRecoveryBegin, 0, -1, -1, 1, 7});
  t.Record({10, TraceEventType::kRecoveryPhaseBegin, 0, -1, -1, 1, 0});
  t.Record({20, TraceEventType::kRecoveryPhaseEnd, 0, -1, -1, 1, 0});
  t.Record({30, TraceEventType::kRecoveryEnd, 0, -1, -1, 1, 0});
  t.Record({40, TraceEventType::kCrash, 3, -1, -1, -1, 0});
  const std::string chrome = t.ToChromeTrace();
  size_t begins = 0;
  size_t ends = 0;
  for (size_t pos = 0; (pos = chrome.find("\"ph\":\"B\"", pos)) !=
                       std::string::npos;
       ++pos) {
    ++begins;
  }
  for (size_t pos = 0;
       (pos = chrome.find("\"ph\":\"E\"", pos)) != std::string::npos;
       ++pos) {
    ++ends;
  }
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(ends, 2u);
  EXPECT_NE(chrome.find("\"ph\":\"i\""), std::string::npos);
  // Recovery slices live on the per-group track.
  EXPECT_NE(chrome.find("\"tid\":100001"), std::string::npos);
}

// --- Run reports ------------------------------------------------------------

TEST(RunReportTest, JsonStructure) {
  RunReport report("unit");
  report.AddParam("seed", int64_t{42});
  report.AddParam("mode", "fast");
  report.AddMetric("ops", uint64_t{100});
  report.AddMetric("ratio", 0.5);
  Histogram h;
  h.Record(10);
  report.AddHistogram("latency_us", h);
  report.BeginTable("t", {"a", "b"});
  report.AddTableRow({"1", "2"});
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"report\":\"unit\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"fast\""), std::string::npos);
  EXPECT_NE(json.find("\"ratio\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":10"), std::string::npos);
  EXPECT_NE(json.find("\"header\":[\"a\",\"b\"]"), std::string::npos);
  EXPECT_EQ(json, report.ToJson());  // Stable.
}

// --- Network wiring ----------------------------------------------------------

constexpr int kTestMsgKind = 91;

struct PingMsg : MessageBody {
  int kind() const override { return kTestMsgKind; }
  size_t ByteSize() const override { return 16; }
};

class SinkNode : public Node {
 public:
  void HandleMessage(const Message&) override {}
  void HandleDeliveryFailure(const Message&) override {}
};

TEST(NetworkTelemetryTest, CountersAndTraceFollowTraffic) {
  Network net;
  const NodeId a = net.AddNode(std::make_unique<SinkNode>());
  const NodeId b = net.AddNode(std::make_unique<SinkNode>());
  auto* t = net.EnableTelemetry();
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(net.EnableTelemetry(), t);  // Idempotent.

  net.Send(a, b, std::make_unique<PingMsg>());
  net.RunUntilIdle();
  EXPECT_EQ(t->metrics().FindCounter("net.sent_messages")->value(), 1u);
  EXPECT_EQ(t->metrics().FindCounter("net.deliveries")->value(), 1u);
  EXPECT_EQ(t->metrics().FindHistogram("net.delivery_latency_us")->count(),
            1u);

  net.SetAvailable(b, false);
  EXPECT_EQ(t->metrics().FindGauge("net.nodes_unavailable")->value(), 1);
  net.Send(a, b, std::make_unique<PingMsg>());
  net.RunUntilIdle();
  EXPECT_EQ(t->metrics().FindCounter("net.delivery_failures")->value(), 1u);
  net.SetAvailable(b, true);
  EXPECT_EQ(t->metrics().FindGauge("net.nodes_unavailable")->value(), 0);

  // The trace saw the send/deliver pair, the crash/restore and the failure.
  size_t crashes = 0;
  size_t sends = 0;
  size_t failures = 0;
  for (const TraceEvent& ev : t->tracer().Events()) {
    crashes += ev.type == TraceEventType::kCrash;
    sends += ev.type == TraceEventType::kSend;
    failures += ev.type == TraceEventType::kDeliveryFailure;
  }
  EXPECT_EQ(crashes, 1u);
  EXPECT_EQ(sends, 2u);
  EXPECT_EQ(failures, 1u);
}

TEST(NetworkTelemetryTest, PerNodeAttribution) {
  Network net;
  const NodeId a = net.AddNode(std::make_unique<SinkNode>());
  const NodeId b = net.AddNode(std::make_unique<SinkNode>());
  net.Send(a, b, std::make_unique<PingMsg>());
  net.Send(a, b, std::make_unique<PingMsg>());
  net.Send(b, a, std::make_unique<PingMsg>());
  net.RunUntilIdle();
  const MessageStats& stats = net.stats();
  EXPECT_EQ(stats.SentBy(a).messages, 2u);
  EXPECT_EQ(stats.SentBy(a).bytes, 32u);
  EXPECT_EQ(stats.SentBy(b).messages, 1u);
  EXPECT_EQ(stats.ReceivedBy(b).messages, 2u);
  EXPECT_EQ(stats.ReceivedBy(a).messages, 1u);

  MetricsRegistry registry;
  stats.ExportTo(&registry);
  EXPECT_EQ(registry.FindCounter("net.node_sent.messages{node=0}")->value(),
            2u);
  EXPECT_EQ(
      registry.FindCounter("net.node_received.messages{node=1}")->value(),
      2u);
}

// --- Determinism & zero-overhead -------------------------------------------

/// One seeded failure-and-recovery workload; returns the file so callers
/// can inspect telemetry or stats.
std::unique_ptr<LhrsFile> RunSeededDrill(bool enable_telemetry) {
  LhrsFile::Options opts;
  opts.group_size = 4;
  opts.policy.base_k = 2;
  opts.file.bucket_capacity = 16;
  auto file = std::make_unique<LhrsFile>(opts);
  if (enable_telemetry) file->network().EnableTelemetry();
  Rng rng(1234);
  std::vector<Key> keys;
  for (int i = 0; i < 300; ++i) {
    const Key key = rng.Next64();
    keys.push_back(key);
    EXPECT_TRUE(file->Insert(key, rng.RandomBytes(24)).ok());
  }
  file->DetectAndRecover(file->CrashDataBucket(1));
  file->DetectAndRecover(file->CrashParityBucket(0, 0));
  for (size_t i = 0; i < keys.size(); i += 7) {
    EXPECT_TRUE(file->Search(keys[i]).ok());
  }
  return file;
}

TEST(TelemetryDeterminismTest, IdenticalSeededRunsExportIdenticalJson) {
  auto run1 = RunSeededDrill(/*enable_telemetry=*/true);
  auto run2 = RunSeededDrill(/*enable_telemetry=*/true);
  auto* t1 = run1->network().telemetry();
  auto* t2 = run2->network().telemetry();
  ASSERT_NE(t1, nullptr);
  ASSERT_NE(t2, nullptr);
  EXPECT_EQ(t1->metrics().ToJson(), t2->metrics().ToJson());
  EXPECT_EQ(t1->tracer().ToJson(), t2->tracer().ToJson());
  EXPECT_EQ(t1->tracer().ToChromeTrace(), t2->tracer().ToChromeTrace());
  // The run exercised the structural events we claim to trace.
  EXPECT_GT(t1->metrics().FindCounter("recovery.completed")->value(), 0u);
  EXPECT_GT(t1->metrics().FindHistogram("recovery_latency_us")->count(), 0u);
  EXPECT_GT(
      t1->metrics().FindHistogram("op_latency_us{op=insert}")->count(), 0u);
}

TEST(TelemetryDeterminismTest, TelemetryDoesNotPerturbTheSimulation) {
  // The instrumented run and the bare run must agree on simulated time and
  // message accounting: observation must not change the experiment.
  auto with = RunSeededDrill(/*enable_telemetry=*/true);
  auto without = RunSeededDrill(/*enable_telemetry=*/false);
  EXPECT_EQ(with->network().now(), without->network().now());
  EXPECT_EQ(with->network().stats().total_messages(),
            without->network().stats().total_messages());
  EXPECT_EQ(with->network().stats().deliveries(),
            without->network().stats().deliveries());
}

TEST(ZeroOverheadTest, DisabledTelemetryIsNull) {
  Network net;
  EXPECT_EQ(net.telemetry(), nullptr);
  // A probe against a null Telemetry is a complete no-op.
  {
    telemetry::ScopedProbe probe(nullptr, "unused");
    probe.Finish();
    probe.Cancel();
  }
  // The instrumented layers run fine without telemetry (this is the
  // default in every other test in the suite, asserted here explicitly).
  LhrsFile::Options opts;
  opts.group_size = 2;
  opts.policy.base_k = 1;
  LhrsFile file(opts);
  EXPECT_TRUE(file.Insert(1, BytesFromString("v")).ok());
  EXPECT_EQ(file.network().telemetry(), nullptr);
}

}  // namespace
}  // namespace lhrs
