// Integration tests of the LH* substrate: a real simulated multicomputer
// with clients, data-bucket servers and a split coordinator.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lhstar/lhstar_file.h"

namespace lhrs {
namespace {

LhStarFile::Options SmallFile(size_t capacity = 8) {
  LhStarFile::Options opts;
  opts.file.bucket_capacity = capacity;
  return opts;
}

Bytes Val(const std::string& s) { return BytesFromString(s); }

TEST(LhStarFileTest, InsertSearchRoundTrip) {
  LhStarFile file(SmallFile());
  ASSERT_TRUE(file.Insert(1, Val("one")).ok());
  ASSERT_TRUE(file.Insert(2, Val("two")).ok());
  auto got = file.Search(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Val("one"));
  got = file.Search(2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Val("two"));
}

TEST(LhStarFileTest, SearchMissingIsNotFound) {
  LhStarFile file(SmallFile());
  ASSERT_TRUE(file.Insert(1, Val("x")).ok());
  auto got = file.Search(99);
  EXPECT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsNotFound());
}

TEST(LhStarFileTest, DuplicateInsertRejected) {
  LhStarFile file(SmallFile());
  ASSERT_TRUE(file.Insert(1, Val("x")).ok());
  Status dup = file.Insert(1, Val("y"));
  EXPECT_TRUE(dup.IsAlreadyExists());
  auto got = file.Search(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Val("x"));
}

TEST(LhStarFileTest, UpdateAndDelete) {
  LhStarFile file(SmallFile());
  ASSERT_TRUE(file.Insert(5, Val("before")).ok());
  ASSERT_TRUE(file.Update(5, Val("after")).ok());
  auto got = file.Search(5);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Val("after"));
  ASSERT_TRUE(file.Delete(5).ok());
  EXPECT_TRUE(file.Search(5).status().IsNotFound());
  EXPECT_TRUE(file.Update(5, Val("zombie")).IsNotFound());
  EXPECT_TRUE(file.Delete(5).IsNotFound());
}

TEST(LhStarFileTest, FileScalesAndAllKeysRemainFindable) {
  LhStarFile file(SmallFile(/*capacity=*/10));
  Rng rng(1234);
  std::set<Key> keys;
  while (keys.size() < 500) keys.insert(rng.Next64());
  for (Key k : keys) {
    ASSERT_TRUE(file.Insert(k, Val("v" + std::to_string(k))).ok());
  }
  EXPECT_GT(file.bucket_count(), 32u) << "file did not scale";
  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status();
    EXPECT_EQ(*got, Val("v" + std::to_string(k)));
  }
}

TEST(LhStarFileTest, NoRecordEverInWrongBucket) {
  LhStarFile file(SmallFile(6));
  Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), Val("x")).ok());
  }
  const FileState& state = file.coordinator().state();
  size_t total = 0;
  for (BucketNo b = 0; b < file.bucket_count(); ++b) {
    const DataBucketNode* bucket = file.bucket(b);
    EXPECT_EQ(bucket->level(), state.BucketLevel(b));
    for (Key key : bucket->records().SortedKeys()) {
      EXPECT_EQ(state.Address(key), b) << "key " << key;
      ++total;
    }
  }
  EXPECT_EQ(total, 300u);
}

TEST(LhStarFileTest, LoadFactorNearSeventyPercentWithoutLoadControl) {
  LhStarFile::Options opts;
  opts.file.bucket_capacity = 20;
  LhStarFile file(opts);
  Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), Val("payload")).ok());
  }
  const StorageStats stats = file.GetStorageStats();
  EXPECT_GT(stats.load_factor, 0.5);
  EXPECT_LT(stats.load_factor, 0.95);
}

TEST(LhStarFileTest, AverageInsertCostNearOneMessagePlusReply) {
  // Paper: "the average key insert cost is one message, and key search
  // cost is two messages, regardless of the file size" (excluding the
  // reply in their accounting; we measure request traffic after the
  // client image has converged through normal use).
  LhStarFile::Options opts;
  opts.file.bucket_capacity = 20;
  LhStarFile file(opts);
  Rng rng(21);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), Val("x")).ok());
  }
  // Steady state: measure 500 searches.
  std::vector<Key> probe;
  for (int i = 0; i < 500; ++i) probe.push_back(rng.Next64());
  const uint64_t before = file.network().stats().total_messages();
  for (Key k : probe) (void)file.Search(k);
  const uint64_t after = file.network().stats().total_messages();
  const double per_search = static_cast<double>(after - before) / 500.0;
  // Request + reply, with rare forwarding: between 2 and 2.3.
  EXPECT_GE(per_search, 2.0);
  EXPECT_LT(per_search, 2.3);
}

TEST(LhStarFileTest, NewClientConvergesWithLogarithmicIams) {
  LhStarFile::Options opts;
  opts.file.bucket_capacity = 10;
  LhStarFile file(opts);
  Rng rng(31);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), Val("x")).ok());
  }
  ASSERT_GT(file.bucket_count(), 100u);
  // A brand-new client starts with image (0, 0).
  const size_t fresh = file.AddClient();
  ClientNode& c = file.client(fresh);
  const uint64_t iams_before = c.iam_count();
  for (int i = 0; i < 2000; ++i) {
    auto got = file.SearchVia(fresh, rng.Next64());
    EXPECT_TRUE(got.ok() || got.status().IsNotFound());
  }
  const uint64_t iams = c.iam_count() - iams_before;
  EXPECT_GT(iams, 0u);
  EXPECT_LE(iams, 20u) << "image convergence took more than O(log M) IAMs";
  EXPECT_EQ(c.image().presumed_bucket_count(), file.bucket_count());
}

TEST(LhStarFileTest, ScanFindsEverythingDeterministically) {
  LhStarFile file(SmallFile(7));
  Rng rng(41);
  std::set<Key> keys;
  while (keys.size() < 200) keys.insert(rng.Next64());
  for (Key k : keys) ASSERT_TRUE(file.Insert(k, Val("scanme")).ok());
  auto result = file.Scan();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), keys.size());
  std::set<Key> seen;
  for (const auto& rec : *result) seen.insert(rec.key);
  EXPECT_EQ(seen, keys);
}

TEST(LhStarFileTest, ScanFallsBackToUnicastWithoutMulticast) {
  // Section 2.1: without a hardware multicast service the client sends one
  // point-to-point ScanRequest per image bucket, each paying full message
  // cost; with the service, a scan counts as a single multicast message.
  LhStarFile::Options opts = SmallFile(7);
  opts.net.multicast_available = false;
  LhStarFile file(opts);
  Rng rng(41);
  std::set<Key> keys;
  while (keys.size() < 200) keys.insert(rng.Next64());
  for (Key k : keys) ASSERT_TRUE(file.Insert(k, Val("scanme")).ok());

  const uint64_t image_buckets =
      file.client(0).image().presumed_bucket_count();
  const uint64_t before =
      file.network().stats().ForKind(LhStarMsg::kScanRequest).messages;
  auto result = file.Scan();
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<Key> seen;
  for (const auto& rec : *result) seen.insert(rec.key);
  EXPECT_EQ(seen, keys);
  const uint64_t sent =
      file.network().stats().ForKind(LhStarMsg::kScanRequest).messages -
      before;
  // One true unicast per image bucket (server-side coverage forwarding may
  // add more for buckets the image does not know).
  EXPECT_GE(sent, image_buckets);
  EXPECT_GT(sent, 1u);

  // Contrast: the multicast path books the client's fan-out as a single
  // message (only server-side coverage forwards remain unicast), so the
  // same scan over the same file costs strictly fewer messages.
  LhStarFile mfile(SmallFile(7));
  for (Key k : keys) ASSERT_TRUE(mfile.Insert(k, Val("scanme")).ok());
  const uint64_t mbefore =
      mfile.network().stats().ForKind(LhStarMsg::kScanRequest).messages;
  ASSERT_TRUE(mfile.Scan().ok());
  const uint64_t msent =
      mfile.network().stats().ForKind(LhStarMsg::kScanRequest).messages -
      mbefore;
  EXPECT_LT(msent, sent);
}

TEST(LhStarFileTest, ScanWithPredicateSelectsSubset) {
  LhStarFile file(SmallFile(9));
  for (Key k = 0; k < 100; ++k) {
    const char* tag = (k % 3 == 0) ? "red" : "blue";
    ASSERT_TRUE(file.Insert(k, Val(tag)).ok());
  }
  ScanPredicate pred;
  pred.contains = Val("red");
  auto result = file.Scan(pred);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 34u);  // k = 0, 3, ..., 99.
  for (const auto& rec : *result) EXPECT_EQ(rec.key % 3, 0u);
}

TEST(LhStarFileTest, ScanWithKeyRangeSelectsInclusiveRange) {
  LhStarFile file(SmallFile(9));
  for (Key k = 0; k < 100; ++k) {
    const char* tag = (k % 3 == 0) ? "red" : "blue";
    ASSERT_TRUE(file.Insert(k, Val(tag)).ok());
  }
  ScanPredicate pred;
  pred.has_key_range = true;
  pred.key_min = 10;
  pred.key_max = 20;
  auto result = file.Scan(pred);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 11u);  // Inclusive bounds.
  for (const auto& rec : *result) {
    EXPECT_GE(rec.key, 10u);
    EXPECT_LE(rec.key, 20u);
  }
  // Range composes with the substring selection.
  pred.contains = Val("red");
  result = file.Scan(pred);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);  // k = 12, 15, 18.
}

TEST(LhStarFileTest, ProbabilisticScanAlsoComplete) {
  LhStarFile file(SmallFile(9));
  for (Key k = 0; k < 120; ++k) {
    ASSERT_TRUE(file.Insert(k, Val("x")).ok());
  }
  auto result = file.Scan({}, /*deterministic=*/false);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 120u);
}

TEST(LhStarFileTest, ScanByStaleClientCoversNewBuckets) {
  LhStarFile file(SmallFile(6));
  const size_t fresh = file.AddClient();
  Rng rng(55);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), Val("x")).ok());
  }
  // The fresh client still believes the file has one bucket.
  EXPECT_EQ(file.client(fresh).image().presumed_bucket_count(), 1u);
  ClientNode& c = file.client(fresh);
  const uint64_t op = c.StartScan({}, /*deterministic=*/true);
  file.network().RunUntilIdle();
  ASSERT_TRUE(c.IsDone(op));
  auto outcome = c.TakeResult(op);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->status.ok());
  EXPECT_EQ(outcome->scan_records.size(), 400u);
}

TEST(LhStarFileTest, UnavailableBucketFailsOpsWithoutAvailabilityLayer) {
  LhStarFile file(SmallFile(6));
  Rng rng(66);
  std::vector<Key> keys;
  for (int i = 0; i < 100; ++i) {
    keys.push_back(rng.Next64());
    ASSERT_TRUE(file.Insert(keys.back(), Val("x")).ok());
  }
  ASSERT_GT(file.bucket_count(), 4u);
  // Crash bucket 2's server.
  file.network().SetAvailable(file.context().allocation.Lookup(2), false);
  const FileState& state = file.coordinator().state();
  bool hit_dead_bucket = false;
  for (Key k : keys) {
    auto got = file.Search(k);
    if (state.Address(k) == 2) {
      hit_dead_bucket = true;
      EXPECT_TRUE(got.status().IsUnavailable()) << got.status();
    } else {
      EXPECT_TRUE(got.ok()) << got.status();
    }
  }
  EXPECT_TRUE(hit_dead_bucket);
  // A deterministic scan cannot terminate normally.
  auto scan = file.Scan();
  EXPECT_TRUE(scan.status().IsUnavailable());
}

TEST(LhStarFileTest, MultipleClientsIndependentImages) {
  LhStarFile file(SmallFile(8));
  const size_t c2 = file.AddClient();
  Rng rng(77);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(file.InsertVia(i % 2 == 0 ? 0 : c2, rng.Next64(),
                               Val("x")).ok());
  }
  // Both clients function and their images are valid (<= actual).
  EXPECT_LE(file.client(0).image().presumed_bucket_count(),
            file.bucket_count());
  EXPECT_LE(file.client(c2).image().presumed_bucket_count(),
            file.bucket_count());
}

TEST(LhStarFileTest, LoadControlDelaysSplits) {
  LhStarFile::Options uncontrolled = SmallFile(10);
  LhStarFile::Options controlled = SmallFile(10);
  controlled.file.use_load_control = true;
  controlled.file.split_load_threshold = 0.85;
  LhStarFile f1(uncontrolled);
  LhStarFile f2(controlled);
  Rng rng1(88), rng2(88);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(f1.Insert(rng1.Next64(), Val("x")).ok());
    ASSERT_TRUE(f2.Insert(rng2.Next64(), Val("x")).ok());
  }
  EXPECT_GT(f2.GetStorageStats().load_factor,
            f1.GetStorageStats().load_factor);
}

TEST(LhStarFileTest, WorksWithMultipleInitialBuckets) {
  LhStarFile::Options opts = SmallFile(8);
  opts.file.initial_buckets = 4;
  LhStarFile file(opts);
  Rng rng(91);
  std::set<Key> keys;
  while (keys.size() < 200) keys.insert(rng.Next64());
  for (Key k : keys) ASSERT_TRUE(file.Insert(k, Val("x")).ok());
  for (Key k : keys) EXPECT_TRUE(file.Search(k).ok());
  auto scan = file.Scan();
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), keys.size());
}

}  // namespace
}  // namespace lhrs
