// Property tests for the runtime-dispatched GF kernel layer (gf/kernels.h).
//
// Every kernel tier available on this machine is exercised directly via
// AvailableKernels() and compared byte-for-byte against the pinned "scalar"
// reference tier, across random lengths (including odd tails and sub-word
// sizes), unaligned source/destination offsets, and the full coefficient
// space (exhaustive for GF(2^8), edge cases plus random samples for
// GF(2^16)). CI additionally runs this binary twice with LHRS_KERNEL_ISA
// forced to "scalar" and "native" to cover the env-override path end to end.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "gf/gf256.h"
#include "gf/gf65536.h"
#include "gf/kernels.h"

namespace lhrs {
namespace {

// Lengths chosen to straddle every kernel boundary: empty, sub-word, word,
// one vector, vector +/- 1, the 32/64/128-byte main-loop strides, and a
// large size with a ragged tail.
constexpr size_t kLengths[] = {0,  1,  2,  3,   7,   8,   9,   15,  16, 17, 31,
                               32, 33, 63, 64,  65,  127, 128, 129, 255, 256,
                               257, 1000, 4096, 4101};

// Offsets into an over-allocated buffer, so kernels see misaligned
// pointers relative to the 16/32-byte vector widths.
constexpr size_t kOffsets[] = {0, 1, 3, 8, 13};

const GfKernels& Scalar() {
  const GfKernels* s = KernelsByName("scalar");
  EXPECT_NE(s, nullptr);
  return *s;
}

class GfKernelsTest : public ::testing::Test {
 protected:
  // Runs `op(kernels, dst, src, n)` for one tier and for the scalar
  // reference on identical inputs and expects identical output buffers.
  template <typename Op>
  void ExpectMatchesScalar(const GfKernels& k, size_t n, size_t dst_off,
                           size_t src_off, Rng& rng, Op op) {
    const Bytes src_store = rng.RandomBytes(src_off + n);
    const Bytes dst_init = rng.RandomBytes(dst_off + n);
    Bytes got = dst_init;
    Bytes want = dst_init;
    op(k, got.data() + dst_off, src_store.data() + src_off, n);
    op(Scalar(), want.data() + dst_off, src_store.data() + src_off, n);
    ASSERT_EQ(got, want) << "tier=" << k.name << " n=" << n
                         << " dst_off=" << dst_off << " src_off=" << src_off;
  }
};

TEST_F(GfKernelsTest, AvailableAlwaysIncludesPortableTiers) {
  const auto tiers = AvailableKernels();
  ASSERT_GE(tiers.size(), 2u);
  EXPECT_STREQ(tiers[0]->name, "scalar");
  EXPECT_STREQ(tiers[1]->name, "wordwise");
  for (const GfKernels* k : tiers) {
    EXPECT_EQ(KernelsByName(k->name), k);
  }
}

TEST_F(GfKernelsTest, KernelsByNameUnknownIsNull) {
  EXPECT_EQ(KernelsByName("avx9"), nullptr);
  EXPECT_EQ(KernelsByName(""), nullptr);
  // "native" is an env-override keyword, not a tier name.
  EXPECT_EQ(KernelsByName("native"), nullptr);
}

TEST_F(GfKernelsTest, ActiveKernelsIsAnAvailableTier) {
  const GfKernels& active = ActiveKernels();
  bool found = false;
  for (const GfKernels* k : AvailableKernels()) {
    if (k == &active) found = true;
  }
  EXPECT_TRUE(found) << active.name;
}

TEST_F(GfKernelsTest, ForceActiveKernelsOverridesAndRestores) {
  const GfKernels& startup = ActiveKernels();
  ForceActiveKernelsForTesting(KernelsByName("scalar"));
  EXPECT_STREQ(ActiveKernels().name, "scalar");
  ForceActiveKernelsForTesting(nullptr);
  EXPECT_EQ(&ActiveKernels(), &startup);
}

TEST_F(GfKernelsTest, XorMatchesScalarEverywhere) {
  Rng rng(0x9e3779b9);
  for (const GfKernels* k : AvailableKernels()) {
    for (size_t n : kLengths) {
      for (size_t dst_off : kOffsets) {
        for (size_t src_off : kOffsets) {
          ExpectMatchesScalar(*k, n, dst_off, src_off, rng,
                              [](const GfKernels& kk, uint8_t* d,
                                 const uint8_t* s,
                                 size_t len) { kk.xor_buf(d, s, len); });
        }
      }
    }
  }
}

TEST_F(GfKernelsTest, MulAdd8AllCoefficientsMatchScalar) {
  Rng rng(0xdecafbad);
  // Exhaustive over GF(2^8) coefficients at one boundary-straddling,
  // misaligned length.
  for (const GfKernels* k : AvailableKernels()) {
    for (uint32_t c = 0; c < 256; ++c) {
      ExpectMatchesScalar(
          *k, 257, 1, 3, rng,
          [c](const GfKernels& kk, uint8_t* d, const uint8_t* s, size_t len) {
            kk.mul_add_8(d, s, len, static_cast<uint8_t>(c));
          });
    }
  }
}

TEST_F(GfKernelsTest, MulAdd8RandomLengthsAndOffsetsMatchScalar) {
  Rng rng(0x5ca1ab1e);
  for (const GfKernels* k : AvailableKernels()) {
    for (size_t n : kLengths) {
      for (size_t dst_off : kOffsets) {
        const auto c = static_cast<uint8_t>(rng.Next64());
        ExpectMatchesScalar(
            *k, n, dst_off, (dst_off * 7 + 1) % 16, rng,
            [c](const GfKernels& kk, uint8_t* d, const uint8_t* s,
                size_t len) { kk.mul_add_8(d, s, len, c); });
      }
    }
  }
}

TEST_F(GfKernelsTest, MulAdd16EdgeAndRandomCoefficientsMatchScalar) {
  Rng rng(0xfeedface);
  const uint16_t edge[] = {0, 1, 2, 3, 0x00FF, 0x0100, 0x8000, 0xFFFF};
  for (const GfKernels* k : AvailableKernels()) {
    for (uint16_t c : edge) {
      ExpectMatchesScalar(
          *k, 4102, 1, 3, rng,
          [c](const GfKernels& kk, uint8_t* d, const uint8_t* s, size_t len) {
            kk.mul_add_16(d, s, len, c);
          });
    }
    for (int i = 0; i < 64; ++i) {
      const auto c = static_cast<uint16_t>(rng.Next64());
      // Even lengths only: GF(2^16) buffers hold whole symbols.
      const size_t n = 2 * (rng.Next64() % 300);
      ExpectMatchesScalar(
          *k, n, i % 4, (i * 5 + 2) % 8, rng,
          [c](const GfKernels& kk, uint8_t* d, const uint8_t* s, size_t len) {
            kk.mul_add_16(d, s, len, c);
          });
    }
  }
}

// Fused row apply must equal a sequence of independent MulAdds through the
// scalar tier. num_srcs sweeps past the fused batching width (16) and the
// coefficient vectors mix in zeros (skipped sources) and ones (pure XOR).
TEST_F(GfKernelsTest, MatrixRowApply8MatchesSequentialScalar) {
  Rng rng(0xab5eed);
  for (const GfKernels* k : AvailableKernels()) {
    for (size_t num_srcs : {size_t{1}, size_t{2}, size_t{4}, size_t{7},
                            size_t{16}, size_t{17}, size_t{33}}) {
      for (size_t n : {size_t{0}, size_t{5}, size_t{64}, size_t{257},
                       size_t{4101}}) {
        std::vector<Bytes> store;
        std::vector<const uint8_t*> srcs;
        std::vector<uint8_t> coeffs;
        for (size_t s = 0; s < num_srcs; ++s) {
          store.push_back(rng.RandomBytes(n));
          srcs.push_back(store.back().data());
          coeffs.push_back(s % 5 == 0 ? 0
                                      : static_cast<uint8_t>(rng.Next64()));
        }
        const Bytes dst_init = rng.RandomBytes(n);
        Bytes got = dst_init;
        Bytes want = dst_init;
        k->matrix_row_apply_8(got.data(), srcs.data(), coeffs.data(),
                              num_srcs, n);
        for (size_t s = 0; s < num_srcs; ++s) {
          Scalar().mul_add_8(want.data(), srcs[s], n, coeffs[s]);
        }
        ASSERT_EQ(got, want)
            << "tier=" << k->name << " num_srcs=" << num_srcs << " n=" << n;
      }
    }
  }
}

TEST_F(GfKernelsTest, MatrixRowApply16MatchesSequentialScalar) {
  Rng rng(0xc0ffee);
  for (const GfKernels* k : AvailableKernels()) {
    for (size_t num_srcs : {size_t{1}, size_t{3}, size_t{16}, size_t{17},
                            size_t{33}}) {
      for (size_t n : {size_t{0}, size_t{6}, size_t{64}, size_t{258},
                       size_t{4102}}) {
        std::vector<Bytes> store;
        std::vector<const uint8_t*> srcs;
        std::vector<uint16_t> coeffs;
        for (size_t s = 0; s < num_srcs; ++s) {
          store.push_back(rng.RandomBytes(n));
          srcs.push_back(store.back().data());
          coeffs.push_back(s % 4 == 0 ? 0
                                      : static_cast<uint16_t>(rng.Next64()));
        }
        const Bytes dst_init = rng.RandomBytes(n);
        Bytes got = dst_init;
        Bytes want = dst_init;
        k->matrix_row_apply_16(got.data(), srcs.data(), coeffs.data(),
                               num_srcs, n);
        for (size_t s = 0; s < num_srcs; ++s) {
          Scalar().mul_add_16(want.data(), srcs[s], n, coeffs[s]);
        }
        ASSERT_EQ(got, want)
            << "tier=" << k->name << " num_srcs=" << num_srcs << " n=" << n;
      }
    }
  }
}

// Zero coefficients must be skipped without touching the source pointer —
// DecodeData passes nullptr for known-zero survivor columns.
TEST_F(GfKernelsTest, RowApplySkipsZeroCoefficientSourcesWithoutReading) {
  Rng rng(0xbadf00d);
  for (const GfKernels* k : AvailableKernels()) {
    const size_t n = 128;
    const Bytes real = rng.RandomBytes(n);
    const uint8_t* srcs[] = {nullptr, real.data(), nullptr};
    const uint8_t coeffs8[] = {0, 7, 0};
    const uint16_t coeffs16[] = {0, 7, 0};
    const Bytes dst_init = rng.RandomBytes(n);
    Bytes got = dst_init;
    Bytes want = dst_init;
    k->matrix_row_apply_8(got.data(), srcs, coeffs8, 3, n);
    Scalar().mul_add_8(want.data(), real.data(), n, 7);
    EXPECT_EQ(got, want) << k->name;
    got = dst_init;
    want = dst_init;
    k->matrix_row_apply_16(got.data(), srcs, coeffs16, 3, n);
    Scalar().mul_add_16(want.data(), real.data(), n, 7);
    EXPECT_EQ(got, want) << k->name;
  }
}

// The public field wrappers must ride whatever tier is active: force the
// scalar tier, capture outputs, then diff against every other tier.
TEST_F(GfKernelsTest, FieldWrappersAreByteIdenticalAcrossTiers) {
  Rng rng(0x1234567);
  const size_t n = 4096;
  const Bytes src = rng.RandomBytes(n);
  const Bytes dst_init = rng.RandomBytes(n);
  struct Snapshot {
    Bytes xored, ma8, ma16;
  };
  auto run = [&] {
    Snapshot s{dst_init, dst_init, dst_init};
    XorBuffer(s.xored.data(), src.data(), n);
    GF256::MulAddBuffer(s.ma8.data(), src.data(), n, 0x1D);
    GF65536::MulAddBuffer(s.ma16.data(), src.data(), n, 0x1100);
    return s;
  };
  ForceActiveKernelsForTesting(KernelsByName("scalar"));
  const Snapshot ref = run();
  for (const GfKernels* k : AvailableKernels()) {
    ForceActiveKernelsForTesting(k);
    const Snapshot got = run();
    EXPECT_EQ(got.xored, ref.xored) << k->name;
    EXPECT_EQ(got.ma8, ref.ma8) << k->name;
    EXPECT_EQ(got.ma16, ref.ma16) << k->name;
  }
  ForceActiveKernelsForTesting(nullptr);
}

// GF(2^16) buffers must hold whole symbols. The public wrapper CHECKs in
// every build type; the raw kernels assert() in debug builds only.
using GfKernelsDeathTest = GfKernelsTest;

TEST_F(GfKernelsDeathTest, Gf65536WrapperRejectsOddByteCount) {
  uint8_t dst[4] = {0};
  const uint8_t src[4] = {1, 2, 3, 4};
  EXPECT_DEATH(GF65536::MulAddBuffer(dst, src, 3, 0x1234), "whole symbols");
  EXPECT_DEATH(GF65536::MulAddBufferByteReference(dst, src, 3, 0x1234),
               "whole symbols");
}

#ifndef NDEBUG
TEST_F(GfKernelsDeathTest, RawKernelsAssertEvenByteCountInDebug) {
  uint8_t dst[4] = {0};
  const uint8_t src[4] = {1, 2, 3, 4};
  for (const GfKernels* k : AvailableKernels()) {
    EXPECT_DEATH(k->mul_add_16(dst, src, 3, 0x1234), "n % 2")
        << k->name;
    const uint8_t* srcs[] = {src};
    const uint16_t coeffs[] = {0x1234};
    EXPECT_DEATH(k->matrix_row_apply_16(dst, srcs, coeffs, 1, 3), "n % 2")
        << k->name;
  }
}
#endif

}  // namespace
}  // namespace lhrs
