// Cross-layer system tests: the simulated file's measured availability
// against the analytic model, concurrent multi-client interleavings, and
// the displaced-bucket protocol of section 2.8 exercised explicitly.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/availability_model.h"
#include "common/rng.h"
#include "lhrs/lhrs_file.h"

namespace lhrs {
namespace {

// The closed-form availability model says: a group survives iff at most k
// of its nodes fail. Validate that the *system* agrees: crash every node
// independently with probability 1-p, run detection + recovery, and check
// that groups are lost exactly when the model's predicate says so — and
// that survival means every record is still readable.
TEST(SystemAvailabilityTest, MeasuredSurvivalMatchesModelPredicate) {
  const double p = 0.8;  // Low availability so both outcomes occur often.
  const uint32_t m = 2, k = 1;
  Rng meta_rng(424242);
  int survived = 0, lost = 0;
  constexpr int kTrials = 30;
  for (int trial = 0; trial < kTrials; ++trial) {
    LhrsFile::Options opts;
    opts.file.bucket_capacity = 8;
    opts.file.initial_buckets = 4;
    opts.group_size = m;
    opts.policy.base_k = k;
    LhrsFile file(opts);
    Rng rng(1000 + trial);
    std::vector<Key> keys;
    for (int i = 0; i < 60; ++i) {
      const Key key = rng.Next64();
      if (file.Insert(key, rng.RandomBytes(24)).ok()) keys.push_back(key);
    }
    // Crash nodes independently; track per-group failure counts.
    const uint32_t groups = static_cast<uint32_t>(file.group_count());
    std::vector<uint32_t> failures(groups, 0);
    std::vector<NodeId> dead;
    for (BucketNo b = 0; b < file.bucket_count(); ++b) {
      if (!meta_rng.Flip(p)) {
        dead.push_back(file.CrashDataBucket(b));
        ++failures[GroupOf(b, m)];
      }
    }
    for (uint32_t g = 0; g < groups; ++g) {
      const auto& info = file.rs_coordinator().group_info(g);
      for (uint32_t j = 0; j < info.k; ++j) {
        if (!meta_rng.Flip(p)) {
          dead.push_back(file.CrashParityBucket(g, j));
          ++failures[g];
        }
      }
    }
    bool model_survives = true;
    for (uint32_t g = 0; g < groups; ++g) {
      if (failures[g] > k) model_survives = false;
    }
    for (NodeId node : dead) file.DetectAndRecover(node);

    const bool system_survives =
        file.rs_coordinator().groups_lost() == 0;
    EXPECT_EQ(system_survives, model_survives) << "trial " << trial;
    if (system_survives) {
      ++survived;
      for (Key key : keys) {
        EXPECT_TRUE(file.Search(key).ok()) << "trial " << trial;
      }
      EXPECT_TRUE(file.VerifyParityInvariants().ok());
    } else {
      ++lost;
    }
  }
  // With p=0.8, 2 groups of 3 nodes: both outcomes must have occurred.
  EXPECT_GT(survived, 0);
  EXPECT_GT(lost, 0);
}

TEST(MultiClientTest, ConcurrentOpsFromManyClientsInterleave) {
  // Several autonomous clients fire operations *before* the network runs:
  // requests, forwards, IAMs, splits and parity updates all interleave in
  // one event storm. Every op must complete correctly.
  LhrsFile::Options opts;
  opts.file.bucket_capacity = 10;
  opts.group_size = 4;
  opts.policy.base_k = 1;
  LhrsFile file(opts);
  constexpr size_t kClients = 5;
  std::vector<size_t> clients;
  clients.push_back(0);
  for (size_t c = 1; c < kClients; ++c) clients.push_back(file.AddClient());

  Rng rng(777);
  struct Pending {
    size_t client;
    uint64_t op_id;
    Key key;
  };
  std::set<Key> all_keys;
  for (int round = 0; round < 40; ++round) {
    std::vector<Pending> batch;
    for (size_t c : clients) {
      for (int i = 0; i < 5; ++i) {
        const Key key = rng.Next64();
        all_keys.insert(key);
        batch.push_back(
            {c, file.client(c).StartOp(OpType::kInsert, key,
                                       rng.RandomBytes(16)),
             key});
      }
    }
    file.network().RunUntilIdle();
    for (const auto& op : batch) {
      ASSERT_TRUE(file.client(op.client).IsDone(op.op_id));
      auto outcome = file.client(op.client).TakeResult(op.op_id);
      ASSERT_TRUE(outcome.ok());
      EXPECT_TRUE(outcome->status.ok()) << outcome->status;
    }
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  // Cross-client visibility: every key readable from every client.
  Rng pick(88);
  for (int i = 0; i < 100; ++i) {
    auto it = all_keys.begin();
    std::advance(it, pick.Uniform(all_keys.size()));
    const size_t c = pick.Uniform(kClients);
    auto got = file.SearchVia(c, *it);
    EXPECT_TRUE(got.ok()) << got.status();
  }
}

TEST(DisplacedBucketTest, StaleCacheToReusedServerBouncesViaCoordinator) {
  // Section 2.8 case (ii)/(iii) explicitly: client 0 caches the address of
  // bucket 1; the bucket is recovered elsewhere; the old server comes back
  // as a hot spare; client 0's next access hits the spare, which matches
  // the intended bucket number, fails, and bounces via the coordinator.
  LhrsFile::Options opts;
  opts.file.bucket_capacity = 10;
  opts.group_size = 4;
  opts.policy.base_k = 1;
  LhrsFile file(opts);
  Rng rng(99);
  std::vector<Key> keys;
  for (int i = 0; i < 80; ++i) {
    const Key key = rng.Next64();
    if (file.Insert(key, BytesFromString("v")).ok()) keys.push_back(key);
  }
  // Make sure client 0 has cached bucket 1's address.
  Key key_in_1 = 0;
  for (Key key : keys) {
    if (file.coordinator().state().Address(key) == 1) {
      key_in_1 = key;
      break;
    }
  }
  ASSERT_TRUE(file.Search(key_in_1).ok());

  const NodeId old_node = file.CrashDataBucket(1);
  file.DetectAndRecover(old_node);
  file.RestoreNode(old_node);  // Back up, now a decommissioned spare.
  ASSERT_TRUE(
      file.network().node_as<DataBucketNode>(old_node)->decommissioned());

  // The access through the stale cache must still succeed (one bounce).
  const uint64_t bounces_before =
      file.network().stats().ForKind(LhStarMsg::kClientOpViaCoordinator)
          .messages;
  auto got = file.Search(key_in_1);
  ASSERT_TRUE(got.ok()) << got.status();
  const uint64_t bounces_after =
      file.network().stats().ForKind(LhStarMsg::kClientOpViaCoordinator)
          .messages;
  EXPECT_EQ(bounces_after, bounces_before + 1)
      << "expected exactly one coordinator bounce";

  // And the IAM healed the cache: the next access goes direct.
  ASSERT_TRUE(file.Search(key_in_1).ok());
  EXPECT_EQ(file.network().stats().ForKind(LhStarMsg::kClientOpViaCoordinator)
                .messages,
            bounces_after);
}

TEST(SelfCheckTest, RestartedBucketKeepsServingWhenNotReplaced) {
  // Section 2.5.4 second case: the outage went unnoticed; the node
  // restarts with intact data, asks the coordinator, and keeps its bucket.
  LhrsFile::Options opts;
  opts.group_size = 4;
  opts.policy.base_k = 1;
  opts.auto_recover = false;
  LhrsFile file(opts);
  for (Key key = 0; key < 30; ++key) {
    ASSERT_TRUE(file.Insert(key, BytesFromString("x")).ok());
  }
  const NodeId node = file.CrashDataBucket(0);
  file.RestoreNode(node);  // Triggers SelfCheck.
  EXPECT_FALSE(
      file.network().node_as<DataBucketNode>(node)->decommissioned());
  EXPECT_TRUE(file.Search(0).ok());
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(SimulatedTimeTest, OperationLatencyMatchesLatencyModel) {
  // Two short messages (request + reply) at 100 us base + one 80 us KB
  // quantum each: a converged search takes 360 us of simulated time,
  // independent of file size.
  LhrsFile::Options opts;
  opts.group_size = 4;
  opts.policy.base_k = 2;
  LhrsFile file(opts);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), rng.RandomBytes(16)).ok());
  }
  Rng probe(4);
  for (int i = 0; i < 20; ++i) {
    const SimTime before = file.network().now();
    (void)file.Search(probe.Next64());
    const SimTime elapsed = file.network().now() - before;
    EXPECT_GE(elapsed, 360u);
    EXPECT_LE(elapsed, 1080u);  // At most two forwarding hops more.
  }
}

}  // namespace
}  // namespace lhrs
