// Randomized scenario fuzzing of the LH*g baseline (both variants),
// mirroring lhrs_fuzz_test: interleaved ops, single-failure crashes and
// recoveries, checked against a shadow model and the XOR parity invariant.

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/lhg/lhg_file.h"
#include "common/rng.h"

namespace lhrs::lhg {
namespace {

struct FuzzParams {
  uint64_t seed;
  uint32_t k;
  bool g1;
};

class LhgFuzzTest : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(LhgFuzzTest, LongRandomScenario) {
  const FuzzParams params = GetParam();
  LhgFile::Options opts;
  opts.file.bucket_capacity = 8;
  opts.parity_bucket_capacity = 8;
  opts.group_size = params.k;
  opts.reassign_group_keys_on_split = params.g1;
  LhgFile file(opts);
  Rng rng(params.seed);

  std::map<Key, Bytes> model;
  NodeId crashed_data = kInvalidNode;     // At most one failure at a time.
  BucketNo crashed_data_bucket = 0;
  BucketNo crashed_parity = ~BucketNo{0};

  auto heal = [&] {
    if (crashed_data != kInvalidNode) {
      file.RecoverDataBucket(crashed_data_bucket);
      crashed_data = kInvalidNode;
    }
    if (crashed_parity != ~BucketNo{0}) {
      file.RecoverParityBucket(crashed_parity);
      crashed_parity = ~BucketNo{0};
    }
  };

  for (int step = 0; step < 800; ++step) {
    const int action = static_cast<int>(rng.Uniform(100));
    if (action < 45) {
      const Key key = rng.Next64();
      const Bytes value = rng.RandomBytes(1 + rng.Uniform(40));
      const Status s = file.Insert(key, value);
      if (model.contains(key)) {
        EXPECT_TRUE(s.IsAlreadyExists());
      } else if (s.ok()) {
        model[key] = value;
      } else {
        ADD_FAILURE() << "step " << step << " insert failed: " << s;
      }
    } else if (action < 58 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      const Bytes value = rng.RandomBytes(1 + rng.Uniform(40));
      ASSERT_TRUE(file.Update(it->first, value).ok()) << "step " << step;
      it->second = value;
    } else if (action < 68 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(file.Delete(it->first).ok()) << "step " << step;
      model.erase(it);
    } else if (action < 84) {
      if (!model.empty() && rng.Flip(0.8)) {
        auto it = model.begin();
        std::advance(it, rng.Uniform(model.size()));
        auto got = file.Search(it->first);
        ASSERT_TRUE(got.ok()) << "step " << step << ": " << got.status();
        EXPECT_EQ(*got, it->second);
      } else {
        Key key = rng.Next64();
        while (model.contains(key)) key = rng.Next64();
        EXPECT_TRUE(file.Search(key).status().IsNotFound()) << step;
      }
    } else if (action < 90 && crashed_data == kInvalidNode &&
               crashed_parity == ~BucketNo{0}) {
      // 1-availability budget: at most one failure anywhere at a time
      // (a data+parity pair is already unrecoverable in LH*g).
      if (rng.Flip(0.7)) {
        crashed_data_bucket =
            static_cast<BucketNo>(rng.Uniform(file.bucket_count()));
        crashed_data = file.CrashDataBucket(crashed_data_bucket);
      } else {
        crashed_parity = static_cast<BucketNo>(
            rng.Uniform(file.parity_bucket_count()));
        file.CrashParityBucket(crashed_parity);
      }
    } else if (action < 96) {
      heal();
    }
  }

  heal();
  EXPECT_TRUE(file.VerifyParityInvariants().ok()) << "end-state parity";
  for (const auto& [key, value] : model) {
    auto got = file.Search(key);
    ASSERT_TRUE(got.ok()) << "key " << key << ": " << got.status();
    EXPECT_EQ(*got, value);
  }
  auto scan = file.Scan();
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, LhgFuzzTest,
    ::testing::Values(FuzzParams{11, 3, false}, FuzzParams{12, 3, true},
                      FuzzParams{13, 2, false}, FuzzParams{14, 5, false},
                      FuzzParams{15, 4, true}, FuzzParams{16, 2, true}),
    [](const ::testing::TestParamInfo<FuzzParams>& info) {
      return "seed" + std::to_string(info.param.seed) + "_k" +
             std::to_string(info.param.k) +
             (info.param.g1 ? "_g1" : "_basic");
    });

}  // namespace
}  // namespace lhrs::lhg
