// Property tests of the linear-hashing math: algorithms A1 (addressing),
// A2 (server forwarding), A3 (image adjustment) and the file-state
// evolution, directly against the invariants stated in the paper.

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lh/lh_math.h"

namespace lhrs {
namespace {

/// Simulates file growth to `splits` splits and returns per-bucket levels.
std::vector<Level> GrowFile(FileState& state, uint32_t splits) {
  std::vector<Level> levels(state.initial_buckets, 0);
  for (uint32_t s = 0; s < splits; ++s) {
    const BucketNo victim = state.n;
    const Level new_level = state.i + 1;
    const BucketNo new_bucket = state.AdvanceSplit();
    levels[victim] = new_level;
    EXPECT_EQ(new_bucket, levels.size());
    levels.push_back(new_level);
  }
  return levels;
}

TEST(FileStateTest, BucketCountMatchesE1) {
  FileState state;
  for (int s = 0; s < 100; ++s) {
    EXPECT_EQ(state.bucket_count(),
              state.n + (BucketNo{state.initial_buckets} << state.i));
    state.AdvanceSplit();
  }
}

TEST(FileStateTest, SplitSequenceFollowsLinearHashing) {
  // Splits must proceed 0; 0,1; 0,1,2,3; ... (paper section 2.1).
  FileState state;
  std::vector<BucketNo> victims;
  for (int s = 0; s < 15; ++s) {
    victims.push_back(state.n);
    state.AdvanceSplit();
  }
  EXPECT_EQ(victims, (std::vector<BucketNo>{0, 0, 1, 0, 1, 2, 3, 0, 1, 2, 3,
                                            4, 5, 6, 7}));
}

TEST(FileStateTest, LevelsComputedMatchSimulatedLevels) {
  FileState state;
  std::vector<Level> levels = GrowFile(state, 23);
  for (BucketNo b = 0; b < state.bucket_count(); ++b) {
    EXPECT_EQ(state.BucketLevel(b), levels[b]) << "bucket " << b;
  }
}

TEST(FileStateTest, WorksWithMultipleInitialBuckets) {
  FileState state;
  state.initial_buckets = 3;
  std::vector<Level> levels = GrowFile(state, 10);
  EXPECT_EQ(state.bucket_count(), 13u);
  for (BucketNo b = 0; b < state.bucket_count(); ++b) {
    EXPECT_EQ(state.BucketLevel(b), levels[b]);
  }
}

TEST(AddressingTest, AddressAlwaysWithinFile) {
  Rng rng(5);
  FileState state;
  for (int s = 0; s < 200; ++s) {
    for (int t = 0; t < 50; ++t) {
      const Key c = rng.Next64();
      EXPECT_LT(state.Address(c), state.bucket_count());
    }
    state.AdvanceSplit();
  }
}

TEST(AddressingTest, CorrectBucketIffHashAtBucketLevel) {
  // The paper's claim: m = a iff m = h_{j_m}(c).
  Rng rng(7);
  FileState state;
  GrowFile(state, 37);
  for (int t = 0; t < 2000; ++t) {
    const Key c = rng.Next64();
    const BucketNo a = state.Address(c);
    for (BucketNo m = 0; m < state.bucket_count(); ++m) {
      const bool hash_match =
          HashL(c, state.BucketLevel(m), state.initial_buckets) == m;
      EXPECT_EQ(hash_match, m == a) << "key " << c << " bucket " << m;
    }
  }
}

TEST(ForwardingTest, AtMostTwoHopsFromAnyImage) {
  // For every (older image, current state) pair and random keys, A2 must
  // reach the correct bucket in at most two forwardings.
  Rng rng(11);
  FileState state;
  std::vector<FileState> history;
  for (int s = 0; s < 40; ++s) {
    history.push_back(state);
    state.AdvanceSplit();
  }
  for (const FileState& old_state : history) {
    ClientImage image{old_state.i, old_state.n, old_state.initial_buckets};
    for (int t = 0; t < 200; ++t) {
      const Key c = rng.Next64();
      BucketNo a = image.Address(c);
      const BucketNo correct = state.Address(c);
      int hops = 0;
      while (a != correct) {
        const BucketNo next =
            ForwardAddress(a, state.BucketLevel(a), c,
                           state.initial_buckets);
        ASSERT_NE(next, a) << "A2 stuck at wrong bucket";
        a = next;
        ASSERT_LE(++hops, 2) << "A2 exceeded two hops";
      }
      EXPECT_EQ(ForwardAddress(a, state.BucketLevel(a), c,
                               state.initial_buckets),
                a);
    }
  }
}

TEST(ImageAdjustmentTest, SameErrorNeverRepeats) {
  // After an IAM for key c, re-addressing c must hit the correct bucket
  // (A3's guarantee that the same addressing error cannot happen twice).
  Rng rng(13);
  FileState state;
  GrowFile(state, 29);
  for (int t = 0; t < 500; ++t) {
    ClientImage image;  // Brand-new client.
    const Key c = rng.Next64();
    const BucketNo correct = state.Address(c);
    if (image.Address(c) == correct) continue;
    image.Adjust(correct, state.BucketLevel(correct));
    EXPECT_EQ(image.Address(c), correct) << "key " << c;
  }
}

TEST(ImageAdjustmentTest, ConvergesInLogarithmicSteps) {
  // Repeatedly addressing random keys and applying IAMs must converge the
  // image in O(log M) adjustments.
  Rng rng(17);
  FileState state;
  GrowFile(state, 200);  // M = 201.
  ClientImage image;
  int adjustments = 0;
  for (int t = 0; t < 100000; ++t) {
    const Key c = rng.Next64();
    const BucketNo guess = image.Address(c);
    const BucketNo correct = state.Address(c);
    if (guess != correct) {
      image.Adjust(correct, state.BucketLevel(correct));
      ++adjustments;
    }
    if (image.presumed_bucket_count() == state.bucket_count()) break;
  }
  EXPECT_LE(adjustments, 2 * 8 + 4) << "more than O(log M) IAMs";
  EXPECT_EQ(image.presumed_bucket_count(), state.bucket_count());
}

TEST(ImageAdjustmentTest, ImageNeverOvershootsFile) {
  Rng rng(19);
  FileState state;
  ClientImage image;
  for (int s = 0; s < 100; ++s) {
    state.AdvanceSplit();
    for (int t = 0; t < 20; ++t) {
      const Key c = rng.Next64();
      const BucketNo correct = state.Address(c);
      if (image.Address(c) != correct) {
        image.Adjust(correct, state.BucketLevel(correct));
      }
      EXPECT_LE(image.presumed_bucket_count(), state.bucket_count());
    }
  }
}

TEST(ScanCoverageTest, ImageLevelsPlusForwardingCoverExactlyOnce) {
  // The scan coverage rule: the client sends to every bucket of its image
  // with the image-implied level; bucket a at level j receiving level l
  // forwards to children a + 2^(v-1) N for v = l+1..j. Every real bucket
  // must receive the scan exactly once, for any lagging image.
  FileState state;
  std::vector<FileState> history;
  for (int s = 0; s < 64; ++s) {
    history.push_back(state);
    state.AdvanceSplit();
  }
  for (const FileState& old_state : history) {
    std::map<BucketNo, int> hits;
    // Direct sends from the image.
    struct Pending {
      BucketNo bucket;
      Level attached;
    };
    std::vector<Pending> queue;
    FileState presumed = old_state;
    for (BucketNo a = 0; a < presumed.bucket_count(); ++a) {
      queue.push_back({a, presumed.BucketLevel(a)});
    }
    while (!queue.empty()) {
      const Pending p = queue.back();
      queue.pop_back();
      ++hits[p.bucket];
      const Level actual = state.BucketLevel(p.bucket);
      for (Level v = p.attached + 1; v <= actual; ++v) {
        queue.push_back(
            {p.bucket + (BucketNo{state.initial_buckets} << (v - 1)), v});
      }
    }
    ASSERT_EQ(hits.size(), state.bucket_count())
        << "image M'=" << old_state.bucket_count();
    for (const auto& [bucket, count] : hits) {
      EXPECT_EQ(count, 1) << "bucket " << bucket << " image M'="
                          << old_state.bucket_count();
    }
  }
}

}  // namespace
}  // namespace lhrs
