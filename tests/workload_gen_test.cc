// Workload-generator tests: seeded determinism (same seed => byte-identical
// per-session op streams, on the classic engine and the locality-sharded
// parallel engine alike), the read-modify-write pairing invariant, and the
// Zipfian empirical frequency check.

#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "lhstar/lhstar_file.h"
#include "sdds/session.h"
#include "workload/generator.h"

namespace lhrs {
namespace {

using workload::DigestOp;
using workload::GeneratorOptions;
using workload::kFnvOffsetBasis;
using workload::WorkloadGenerator;

GeneratorOptions SmallOptions() {
  GeneratorOptions opts;
  opts.seed = 71;
  opts.sessions = 3;
  opts.ops_per_session = 200;
  opts.keyspace = 64;
  opts.value_bytes = 16;
  return opts;
}

TEST(WorkloadGeneratorTest, SameSeedYieldsIdenticalStreams) {
  WorkloadGenerator a(SmallOptions());
  WorkloadGenerator b(SmallOptions());
  ASSERT_EQ(a.preload_keys(), b.preload_keys());
  for (size_t s = 0; s < SmallOptions().sessions; ++s) {
    for (;;) {
      auto op_a = a.Next(s);
      auto op_b = b.Next(s);
      ASSERT_EQ(op_a.has_value(), op_b.has_value());
      if (!op_a.has_value()) break;
      EXPECT_EQ(op_a->op, op_b->op);
      EXPECT_EQ(op_a->key, op_b->key);
      EXPECT_EQ(op_a->value, op_b->value);
    }
  }
}

TEST(WorkloadGeneratorTest, StreamDigestMatchesDrainedStream) {
  const GeneratorOptions opts = SmallOptions();
  WorkloadGenerator gen(opts);
  for (size_t s = 0; s < opts.sessions; ++s) {
    uint64_t h = kFnvOffsetBasis;
    while (auto op = gen.Next(s)) h = DigestOp(h, *op);
    EXPECT_EQ(h, WorkloadGenerator::StreamDigest(opts, s)) << "session " << s;
  }
}

TEST(WorkloadGeneratorTest, SessionsAndSeedsAreUncorrelated) {
  const GeneratorOptions opts = SmallOptions();
  std::set<uint64_t> digests;
  for (size_t s = 0; s < opts.sessions; ++s) {
    digests.insert(WorkloadGenerator::StreamDigest(opts, s));
  }
  GeneratorOptions reseeded = opts;
  reseeded.seed = opts.seed + 1;
  digests.insert(WorkloadGenerator::StreamDigest(reseeded, 0));
  EXPECT_EQ(digests.size(), opts.sessions + 1);
}

TEST(WorkloadGeneratorTest, RmwUpdateImmediatelyFollowsItsSearch) {
  GeneratorOptions opts = SmallOptions();
  opts.search_fraction = 0.2;
  opts.rmw_fraction = 0.7;
  opts.insert_fraction = 0.1;
  WorkloadGenerator gen(opts);
  size_t pairs = 0;
  std::optional<Key> last_search;
  while (auto op = gen.Next(0)) {
    if (op->op == OpType::kUpdate) {
      ASSERT_TRUE(last_search.has_value())
          << "update without a preceding search";
      EXPECT_EQ(op->key, *last_search);
      ++pairs;
    }
    last_search = op->op == OpType::kSearch ? std::optional<Key>(op->key)
                                            : std::nullopt;
  }
  EXPECT_GT(pairs, 40u);  // ~70% of 200 slots are RMW halves.
}

TEST(WorkloadGeneratorTest, ZipfianFrequenciesMatchTheory) {
  GeneratorOptions opts;
  opts.seed = 13;
  opts.sessions = 1;
  opts.ops_per_session = 60000;
  opts.keyspace = 64;
  opts.dist = GeneratorOptions::KeyDist::kZipfian;
  opts.search_fraction = 1.0;
  opts.rmw_fraction = 0.0;
  opts.insert_fraction = 0.0;
  WorkloadGenerator gen(opts);

  std::map<Key, uint64_t> counts;
  uint64_t total = 0;
  while (auto op = gen.Next(0)) {
    ++counts[op->key];
    ++total;
  }
  double harmonic = 0.0;
  for (size_t r = 0; r < opts.keyspace; ++r) {
    harmonic += 1.0 / std::pow(static_cast<double>(r + 1), opts.zipf_theta);
  }
  // The five hottest ranks carry enough mass for a tight relative check.
  for (size_t r = 0; r < 5; ++r) {
    const double expected =
        1.0 / std::pow(static_cast<double>(r + 1), opts.zipf_theta) /
        harmonic;
    const double observed =
        static_cast<double>(counts[gen.preload_keys()[r]]) /
        static_cast<double>(total);
    EXPECT_NEAR(observed, expected, expected * 0.10)
        << "rank " << r << " drifted beyond 10%";
  }
  // Monotone hotness across the head of the distribution.
  EXPECT_GT(counts[gen.preload_keys()[0]], counts[gen.preload_keys()[4]]);
}

/// Runs the generator-fed open-loop runner on a file with `localities`
/// engine workers and returns the per-session digests of the submitted op
/// streams (observed at the OpSource boundary).
std::vector<uint64_t> ObservedDigests(size_t localities,
                                      const GeneratorOptions& opts) {
  LhStarFile::Options file_opts;
  file_opts.file.bucket_capacity = 8;
  file_opts.net.localities = localities;
  LhStarFile file(file_opts);

  WorkloadGenerator gen(opts);
  Rng values(5);
  for (Key k : gen.preload_keys()) {
    EXPECT_TRUE(file.Insert(k, values.RandomBytes(16)).ok());
  }

  std::vector<uint64_t> digests(opts.sessions, kFnvOffsetBasis);
  sdds::PipelinedRunner runner(file,
                               sdds::RunnerOptions{opts.sessions, 4, 0});
  const sdds::RunnerReport report =
      runner.Run([&](size_t session) -> std::optional<sdds::SddsOp> {
        auto op = gen.Next(session);
        if (op.has_value()) digests[session] = DigestOp(digests[session], *op);
        return op;
      });
  EXPECT_EQ(report.completed, opts.sessions * opts.ops_per_session);
  EXPECT_EQ(report.failures, 0u);
  return digests;
}

TEST(WorkloadGeneratorTest, ByteIdenticalStreamsAcrossExecutionEngines) {
  // The determinism claim end to end: the classic deterministic engine
  // (localities = 0) and the locality-sharded parallel engine (4 workers)
  // interleave sessions differently, yet every session submits the exact
  // same byte stream — which also matches the pure-function reference.
  GeneratorOptions opts;
  opts.seed = 29;
  opts.sessions = 2;
  opts.ops_per_session = 120;
  opts.keyspace = 96;
  opts.value_bytes = 16;
  const std::vector<uint64_t> classic = ObservedDigests(0, opts);
  const std::vector<uint64_t> parallel = ObservedDigests(4, opts);
  ASSERT_EQ(classic.size(), parallel.size());
  for (size_t s = 0; s < classic.size(); ++s) {
    EXPECT_EQ(classic[s], parallel[s]) << "session " << s;
    EXPECT_EQ(classic[s], WorkloadGenerator::StreamDigest(opts, s))
        << "session " << s;
  }
}

}  // namespace
}  // namespace lhrs
