// Tests for the LH*g baseline (record grouping, XOR parity file), checked
// directly against the properties stated in its paper: Proposition 1,
// parity-free splits, 1-availability recovery (A4/A5/A7).

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/lhg/lhg_file.h"
#include "common/rng.h"

namespace lhrs::lhg {
namespace {

Bytes Val(const std::string& s) { return BytesFromString(s); }

LhgFile::Options Opts(uint32_t k = 3, size_t capacity = 8) {
  LhgFile::Options opts;
  opts.file.bucket_capacity = capacity;
  opts.group_size = k;
  return opts;
}

std::vector<Key> Populate(LhgFile& file, int n, uint64_t seed) {
  Rng rng(seed);
  std::set<Key> keys;
  while (keys.size() < static_cast<size_t>(n)) keys.insert(rng.Next64());
  std::vector<Key> out(keys.begin(), keys.end());
  for (Key k : out) {
    EXPECT_TRUE(file.Insert(k, Val("value-" + std::to_string(k))).ok());
  }
  return out;
}

TEST(LhgFileTest, GroupKeySerializationRoundTrip) {
  const GroupKey gk{7, 12345};
  EXPECT_EQ(GroupKey::Unpack(gk.Packed()), gk);
  ParityRecordG record;
  record.AddMember(42, 5);
  record.AddMember(99, 17);
  record.parity = BytesFromString("parity-bits");
  const ParityRecordG round = ParityRecordG::Deserialize(record.Serialize());
  EXPECT_EQ(round.members, record.members);
  EXPECT_EQ(round.lengths, record.lengths);
  EXPECT_EQ(round.parity, record.parity);
}

TEST(LhgFileTest, BasicOperationsAndParityInvariant) {
  LhgFile file(Opts());
  ASSERT_TRUE(file.Insert(1, Val("one")).ok());
  ASSERT_TRUE(file.Insert(2, Val("two")).ok());
  ASSERT_TRUE(file.Update(2, Val("two-bis")).ok());
  ASSERT_TRUE(file.Insert(3, Val("three")).ok());
  ASSERT_TRUE(file.Delete(1).ok());
  file.network().RunUntilIdle();
  auto got = file.Search(2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Val("two-bis"));
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(LhgFileTest, GroupKeysImmutableAcrossSplits) {
  LhgFile file(Opts(/*k=*/3, /*capacity=*/6));
  std::vector<Key> keys = Populate(file, 200, 21);
  ASSERT_GT(file.bucket_count(), 6u);
  // Every record's group number g must equal the group of SOME bucket it
  // could have been inserted into — and critically, parity must verify,
  // which only holds if moves preserved group keys.
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(LhgFileTest, SplitsDoNotTouchParityRecords) {
  // THE LH*g property. Fill up to just before a split, snapshot parity
  // traffic, insert one record to trigger the split: the only parity
  // traffic is the one update for the inserted record itself.
  LhgFile file(Opts(/*k=*/3, /*capacity=*/30));
  Rng rng(23);
  // Fill bucket by bucket until one has exactly capacity records.
  while (true) {
    ASSERT_TRUE(file.Insert(rng.Next64(), Val("x")).ok());
    bool any_full = false;
    for (BucketNo b = 0; b < file.bucket_count(); ++b) {
      any_full |= file.lhg_bucket(b)->record_count() == 30;
    }
    if (any_full) break;
  }
  const auto splits_before = file.coordinator().splits_performed();
  const auto updates_before =
      file.network().stats().ForKind(LhgMsg::kParityUpdate).messages;
  // Keep inserting until a split happens.
  while (file.coordinator().splits_performed() == splits_before) {
    ASSERT_TRUE(file.Insert(rng.Next64(), Val("x")).ok());
  }
  const auto inserts_done = [&] {
    const auto updates_after =
        file.network().stats().ForKind(LhgMsg::kParityUpdate).messages;
    return updates_after - updates_before;
  }();
  // Parity updates == number of inserts we performed (1 each), despite a
  // split moving ~capacity/2 records. (Forwarded updates would add hops;
  // the file is small enough that images are exact here.)
  EXPECT_LE(inserts_done, 40u) << "split generated parity traffic";
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(LhgFileTest, InsertCostsOneParityMessage) {
  LhgFile file(Opts(/*k=*/3, /*capacity=*/10000));
  Rng rng(29);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), Val("x")).ok());
  }
  const auto before =
      file.network().stats().ForKind(LhgMsg::kParityUpdate).messages;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), Val("x")).ok());
  }
  const auto after =
      file.network().stats().ForKind(LhgMsg::kParityUpdate).messages;
  EXPECT_EQ(after - before, 100u);
}

TEST(LhgFileTest, StorageOverheadAboutOneOverK) {
  LhgFile file(Opts(/*k=*/5, /*capacity=*/5000));
  Rng rng(31);
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(file.Insert(rng.Next64(), rng.RandomBytes(128)).ok());
  }
  const StorageStats stats = file.GetStorageStats();
  // 1/k = 0.2 plus member-key metadata.
  EXPECT_GT(stats.ParityOverhead(), 0.15);
  EXPECT_LT(stats.ParityOverhead(), 0.45);
}

TEST(LhgFileTest, ParityFileScalesBySplits) {
  LhgFile::Options opts = Opts(/*k=*/3, /*capacity=*/8);
  opts.parity_bucket_capacity = 8;
  LhgFile file(opts);
  Populate(file, 300, 37);
  EXPECT_GT(file.parity_bucket_count(), 2u) << "F2 never split";
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(LhgFileTest, Proposition1HoldsUnderGrowth) {
  // Checked inside VerifyParityInvariants: <= k members per group, all in
  // distinct buckets. Run a heavier mixed workload.
  LhgFile file(Opts(/*k=*/3, /*capacity=*/7));
  Rng rng(41);
  std::set<Key> live;
  for (int i = 0; i < 700; ++i) {
    const int action = static_cast<int>(rng.Uniform(10));
    if (action < 7 || live.empty()) {
      const Key k = rng.Next64();
      if (file.Insert(k, rng.RandomBytes(1 + rng.Uniform(24))).ok()) {
        live.insert(k);
      }
    } else if (action < 9) {
      ASSERT_TRUE(
          file.Update(*live.begin(), rng.RandomBytes(1 + rng.Uniform(24)))
              .ok());
    } else {
      ASSERT_TRUE(file.Delete(*live.begin()).ok());
      live.erase(live.begin());
    }
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(LhgFileTest, DataBucketRecoveryA4) {
  LhgFile file(Opts(/*k=*/3, /*capacity=*/8));
  std::vector<Key> keys = Populate(file, 150, 43);
  const BucketNo victim = 1;
  const size_t victim_records = file.lhg_bucket(victim)->record_count();
  ASSERT_GT(victim_records, 0u);
  const NodeId dead = file.CrashDataBucket(victim);
  file.RecoverDataBucket(victim);
  EXPECT_NE(file.context().allocation.Lookup(victim), dead);
  EXPECT_EQ(file.lhg_bucket(victim)->record_count(), victim_records);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, Val("value-" + std::to_string(k)));
  }
}

TEST(LhgFileTest, RecoveryOfBucketHoldingMovedRecords) {
  // Regression: a split-created bucket holds records whose group numbers
  // belong to their *origin* buckets; A4's collect step must not filter by
  // the failed bucket's own group number.
  LhgFile file(Opts(/*k=*/4, /*capacity=*/8));
  std::vector<Key> keys = Populate(file, 200, 46);
  ASSERT_GT(file.bucket_count(), 8u);
  const BucketNo victim = file.bucket_count() - 1;  // Created by a split.
  const size_t victim_records = file.lhg_bucket(victim)->record_count();
  ASSERT_GT(victim_records, 0u);
  file.CrashDataBucket(victim);
  file.RecoverDataBucket(victim);
  EXPECT_EQ(file.lhg_bucket(victim)->record_count(), victim_records);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << got.status();
  }
}

TEST(LhgFileTest, ParityBucketRecoveryA5) {
  LhgFile::Options opts = Opts(/*k=*/3, /*capacity=*/8);
  opts.parity_bucket_capacity = 8;
  LhgFile file(opts);
  Populate(file, 200, 47);
  ASSERT_GT(file.parity_bucket_count(), 1u);
  const BucketNo victim = 0;
  const size_t victim_records =
      file.parity_bucket(victim)->record_count();
  file.CrashParityBucket(victim);
  file.RecoverParityBucket(victim);
  EXPECT_EQ(file.parity_bucket(victim)->record_count(), victim_records);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(LhgFileTest, DegradedSearchA7ServesRecord) {
  LhgFile file(Opts(/*k=*/3, /*capacity=*/10));
  std::vector<Key> keys = Populate(file, 150, 53);
  file.CrashDataBucket(2);
  // All keys stay searchable: dead-bucket keys via A7 record recovery
  // (which also kicks off A4 in the background).
  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status();
    EXPECT_EQ(*got, Val("value-" + std::to_string(k)));
  }
  EXPECT_GT(file.lhg_coordinator().degraded_reads_served(), 0u);
  file.network().RunUntilIdle();
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(LhgFileTest, DegradedSearchForAbsentKeyIsNotFound) {
  LhgFile file(Opts(/*k=*/3, /*capacity=*/1000));
  ASSERT_TRUE(file.Insert(0, Val("x")).ok());
  file.CrashDataBucket(0);
  auto got = file.Search(3);  // Would hash to bucket 0; never inserted.
  EXPECT_TRUE(got.status().IsNotFound()) << got.status();
}

TEST(LhgFileTest, A7CostScansWholeParityFile) {
  // The contrast with LH*RS: LH*g record recovery multicasts to every F2
  // bucket and waits for all replies (M/k messages), because the group
  // key of the lost record is unknown.
  LhgFile::Options opts = Opts(/*k=*/3, /*capacity=*/8);
  opts.parity_bucket_capacity = 8;
  LhgFile file(opts);
  std::vector<Key> keys = Populate(file, 250, 59);
  const BucketNo m2 = file.parity_bucket_count();
  ASSERT_GT(m2, 2u);
  file.CrashDataBucket(1);
  const auto before =
      file.network().stats().ForKind(LhgMsg::kFindParityReply).messages;
  // One degraded search.
  const FileState& state = file.coordinator().state();
  Key probe = 0;
  for (Key k : keys) {
    if (state.Address(k) == 1) {
      probe = k;
      break;
    }
  }
  ASSERT_TRUE(file.Search(probe).ok());
  const auto after =
      file.network().stats().ForKind(LhgMsg::kFindParityReply).messages;
  EXPECT_EQ(after - before, m2) << "A7 must scan every parity bucket";
}

TEST(LhgFileTest, WritesDuringOutageCompleteAfterRecovery) {
  LhgFile file(Opts(/*k=*/3, /*capacity=*/1000));
  ASSERT_TRUE(file.Insert(0, Val("value-0")).ok());
  file.CrashDataBucket(0);
  ASSERT_TRUE(file.Insert(3, Val("value-3")).ok());
  auto got = file.Search(3);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Val("value-3"));
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(LhgFileTest, TwoFailuresInOneGroupAreFatal) {
  LhgFile file(Opts(/*k=*/3, /*capacity=*/10));
  std::vector<Key> keys = Populate(file, 150, 61);
  // Buckets 0 and 1 are in bucket group 0 (k = 3).
  file.CrashDataBucket(0);
  file.CrashDataBucket(1);
  const FileState& state = file.coordinator().state();
  bool saw_failure = false;
  for (Key k : keys) {
    const BucketNo a = state.Address(k);
    if (a != 0 && a != 1) continue;
    auto got = file.Search(k);
    // A record whose group has another member in the second dead bucket is
    // unrecoverable; sole-member or disjoint groups may still be served.
    if (!got.ok()) {
      saw_failure = true;
      EXPECT_TRUE(got.status().IsDataLoss() ||
                  got.status().IsUnavailable())
          << got.status();
    }
  }
  // With ~50 records across two dead buckets of one group, at least one
  // record group must have members in both.
  EXPECT_TRUE(saw_failure);
}

}  // namespace
}  // namespace lhrs::lhg
