// Direct unit tests of the group-reconstruction engine (lhrs/recovery.h):
// mixed data/parity losses, partial groups, metadata propagation and both
// Galois fields — without any network in the loop.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lhrs/recovery.h"

namespace lhrs {
namespace {

/// Builds a consistent group of `members` records over `m` slots (slot i
/// gets a record iff i < members), returns the data dumps and parity dumps
/// a recovery would read.
struct Fixture {
  uint32_t m, k;
  CoderCache coders;
  std::vector<Bytes> values;           // Per slot ("" = absent).
  std::vector<ColumnDump> data_dumps;  // One per existing slot.
  std::vector<ColumnDump> parity_dumps;

  Fixture(uint32_t m_in, uint32_t k_in, uint32_t existing, uint64_t seed,
          FieldChoice field = FieldChoice::kGf256)
      : m(m_in), k(k_in), coders(m_in, field) {
    Rng rng(seed);
    values.resize(m);
    const ErasureCoder& coder = coders.ForK(k);
    // Three record groups (ranks 1..3) with varying occupancy.
    std::vector<std::vector<Bytes>> per_rank(3,
                                             std::vector<Bytes>(m));
    for (uint32_t slot = 0; slot < existing; ++slot) {
      ColumnDump dump;
      dump.column = slot;
      for (Rank r = 1; r <= 3; ++r) {
        if (slot + r % 2 == 0) continue;  // Some holes.
        Bytes v = rng.RandomBytes(1 + rng.Uniform(40));
        per_rank[r - 1][slot] = v;
        dump.records.push_back(RankedRecord{r, 1000 * r + slot, v});
      }
      data_dumps.push_back(std::move(dump));
    }
    for (uint32_t j = 0; j < k; ++j) {
      ColumnDump dump;
      dump.column = m + j;
      for (Rank r = 1; r <= 3; ++r) {
        WireParityRecord pr;
        pr.rank = r;
        pr.keys.resize(m);
        pr.lengths.resize(m, 0);
        bool any = false;
        for (uint32_t slot = 0; slot < m; ++slot) {
          const Bytes& v = per_rank[r - 1][slot];
          if (v.empty()) continue;
          any = true;
          pr.keys[slot] = 1000 * r + slot;
          pr.lengths[slot] = static_cast<uint32_t>(v.size());
          coder.ApplyDelta(slot, v, j, &pr.parity);
        }
        if (any) dump.parity_records.push_back(std::move(pr));
      }
      parity_dumps.push_back(std::move(dump));
    }
  }
};

TEST(ReconstructionTest, SingleDataColumn) {
  Fixture fx(4, 2, 4, 1);
  ReconstructionRequest req;
  req.m = 4;
  req.k = 2;
  req.coder = &fx.coders.ForK(2);
  req.existing_slots = 4;
  for (uint32_t s = 1; s < 4; ++s) req.survivors.push_back(fx.data_dumps[s]);
  req.survivors.push_back(fx.parity_dumps[0]);
  req.missing_columns = {0};
  auto result = ReconstructColumns(req);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
  // Compare against the original records of slot 0.
  const auto& rebuilt = (*result)[0].records;
  ASSERT_EQ(rebuilt.size(), fx.data_dumps[0].records.size());
  for (size_t i = 0; i < rebuilt.size(); ++i) {
    EXPECT_EQ(rebuilt[i].key, fx.data_dumps[0].records[i].key);
    EXPECT_EQ(rebuilt[i].value, fx.data_dumps[0].records[i].value);
  }
}

TEST(ReconstructionTest, MixedDataAndParityLoss) {
  Fixture fx(4, 3, 4, 2);
  ReconstructionRequest req;
  req.m = 4;
  req.k = 3;
  req.coder = &fx.coders.ForK(3);
  req.existing_slots = 4;
  // Lose data slots 0, 2 and parity column 1: survivors are data 1, 3 and
  // parity 0, 2.
  req.survivors = {fx.data_dumps[1], fx.data_dumps[3], fx.parity_dumps[0],
                   fx.parity_dumps[2]};
  req.missing_columns = {0, 2, 5};
  auto result = ReconstructColumns(req);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 3u);
  for (const auto& col : *result) {
    if (col.column < 4) {
      const auto& expected = fx.data_dumps[col.column].records;
      ASSERT_EQ(col.records.size(), expected.size()) << col.column;
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(col.records[i].value, expected[i].value);
      }
    } else {
      const auto& expected = fx.parity_dumps[col.column - 4].parity_records;
      ASSERT_EQ(col.parity_records.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(col.parity_records[i].keys, expected[i].keys);
        EXPECT_EQ(col.parity_records[i].lengths, expected[i].lengths);
        const BufferView& a = col.parity_records[i].parity;
        const BufferView& b = expected[i].parity;
        const size_t n = std::max(a.size(), b.size());
        EXPECT_EQ(PadTo(a, n), PadTo(b, n));
      }
    }
  }
}

TEST(ReconstructionTest, PartialGroupUsesKnownZeroSlots) {
  // Only 2 of 4 slots exist; slot 1 lost: decode from slot 0 + 1 parity +
  // the two known-zero slots.
  Fixture fx(4, 1, 2, 3);
  ReconstructionRequest req;
  req.m = 4;
  req.k = 1;
  req.coder = &fx.coders.ForK(1);
  req.existing_slots = 2;
  req.survivors = {fx.data_dumps[0], fx.parity_dumps[0]};
  req.missing_columns = {1};
  auto result = ReconstructColumns(req);
  ASSERT_TRUE(result.ok()) << result.status();
  const auto& rebuilt = (*result)[0].records;
  ASSERT_EQ(rebuilt.size(), fx.data_dumps[1].records.size());
  for (size_t i = 0; i < rebuilt.size(); ++i) {
    EXPECT_EQ(rebuilt[i].value, fx.data_dumps[1].records[i].value);
  }
}

TEST(ReconstructionTest, WorksOverGf65536) {
  Fixture fx(4, 2, 4, 4, FieldChoice::kGf65536);
  ReconstructionRequest req;
  req.m = 4;
  req.k = 2;
  req.coder = &fx.coders.ForK(2);
  req.existing_slots = 4;
  req.survivors = {fx.data_dumps[0], fx.data_dumps[3], fx.parity_dumps[0],
                   fx.parity_dumps[1]};
  req.missing_columns = {1, 2};
  auto result = ReconstructColumns(req);
  ASSERT_TRUE(result.ok()) << result.status();
  for (const auto& col : *result) {
    const auto& expected = fx.data_dumps[col.column].records;
    ASSERT_EQ(col.records.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(col.records[i].value, expected[i].value) << col.column;
    }
  }
}

TEST(ReconstructionTest, ParityOnlyRebuildNeedsNoParitySurvivor) {
  Fixture fx(4, 2, 4, 5);
  ReconstructionRequest req;
  req.m = 4;
  req.k = 2;
  req.coder = &fx.coders.ForK(2);
  req.existing_slots = 4;
  req.survivors = {fx.data_dumps[0], fx.data_dumps[1], fx.data_dumps[2],
                   fx.data_dumps[3]};
  req.missing_columns = {4, 5};
  auto result = ReconstructColumns(req);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 2u);
  for (const auto& col : *result) {
    const auto& expected = fx.parity_dumps[col.column - 4].parity_records;
    ASSERT_EQ(col.parity_records.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      const BufferView& a = col.parity_records[i].parity;
      const BufferView& b = expected[i].parity;
      const size_t n = std::max(a.size(), b.size());
      EXPECT_EQ(PadTo(a, n), PadTo(b, n)) << "column " << col.column;
    }
  }
}

}  // namespace
}  // namespace lhrs
