// Parallel-scan tests: exact sorted results while splits race the scan,
// the unicast fallback leg, hot-key (Zipfian) update traffic racing the
// scan, and partition-boundary arithmetic on narrow ranges.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lhrs/lhrs_file.h"
#include "lhstar/lhstar_file.h"
#include "workload/bulk_load.h"
#include "workload/generator.h"
#include "workload/scan_driver.h"

namespace lhrs {
namespace {

using workload::BulkLoad;
using workload::BulkLoadOptions;
using workload::ParallelScan;
using workload::ParallelScanOptions;

std::vector<Key> MakeKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::set<Key> keys;
  while (keys.size() < n) keys.insert(rng.Next64());
  return {keys.begin(), keys.end()};
}

void ExpectSortedAndUnique(const std::vector<WireRecord>& records) {
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].key, records[i].key) << "at " << i;
  }
}

TEST(ParallelScanTest, ExactWhileSplitsRaceTheScan) {
  // 150 preloaded keys, then 150 racing inserts submitted *before* the
  // scan's event processing starts: the splits those inserts trigger are
  // in full flight while the four partition scans fan out. Every
  // preloaded key must be reported exactly once regardless.
  LhStarFile::Options opts;
  opts.file.bucket_capacity = 8;
  LhStarFile file(opts);

  const std::vector<Key> preload = MakeKeys(150, 71);
  Rng values(3);
  for (Key k : preload) {
    ASSERT_TRUE(file.Insert(k, values.RandomBytes(16)).ok());
  }
  const std::vector<Key> racing = MakeKeys(300, 73);  // Superset pool.
  std::vector<sdds::OpToken> tokens;
  std::set<Key> racing_keys;
  for (Key k : racing) {
    if (racing_keys.size() == 150) break;
    if (std::find(preload.begin(), preload.end(), k) != preload.end()) {
      continue;
    }
    racing_keys.insert(k);
    tokens.push_back(
        file.Submit(0, OpType::kInsert, k, values.RandomBytes(16)));
  }

  ParallelScanOptions scan_opts;
  scan_opts.partitions = 4;
  auto result = ParallelScan(file, scan_opts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->partitions, 4u);
  ExpectSortedAndUnique(result->records);

  std::set<Key> reported;
  for (const WireRecord& rec : result->records) reported.insert(rec.key);
  EXPECT_EQ(reported.size(), result->records.size()) << "duplicate keys";
  for (Key k : preload) {
    EXPECT_TRUE(reported.contains(k)) << "preloaded key missing";
  }
  for (Key k : reported) {
    EXPECT_TRUE(std::find(preload.begin(), preload.end(), k) !=
                    preload.end() ||
                racing_keys.contains(k))
        << "phantom key reported";
  }
  // The racing inserts all landed too.
  for (sdds::OpToken token : tokens) {
    auto outcome = file.Take(token);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->status.ok());
  }
}

TEST(ParallelScanTest, UnicastFallbackLegIsExact) {
  // Without hardware multicast the client opens the scan with one unicast
  // per bucket it presumes; coverage forwarding reaches the rest. Same
  // exactness contract, same racing splits.
  LhStarFile::Options opts;
  opts.file.bucket_capacity = 8;
  opts.net.multicast_available = false;
  LhStarFile file(opts);

  const std::vector<Key> preload = MakeKeys(120, 79);
  Rng values(5);
  for (Key k : preload) {
    ASSERT_TRUE(file.Insert(k, values.RandomBytes(16)).ok());
  }
  std::vector<sdds::OpToken> tokens;
  for (Key k : MakeKeys(60, 83)) {
    tokens.push_back(
        file.Submit(0, OpType::kInsert, k, values.RandomBytes(16)));
  }

  ParallelScanOptions scan_opts;
  scan_opts.partitions = 3;
  auto result = ParallelScan(file, scan_opts);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectSortedAndUnique(result->records);
  std::set<Key> reported;
  for (const WireRecord& rec : result->records) reported.insert(rec.key);
  for (Key k : preload) {
    EXPECT_TRUE(reported.contains(k)) << "preloaded key missing (unicast)";
  }
  for (sdds::OpToken token : tokens) {
    auto outcome = file.Take(token);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->status.ok());
  }
}

TEST(ParallelScanTest, ExactUnderHotKeyUpdateTraffic) {
  // Zipfian read-modify-write traffic hammers a handful of hot keys while
  // the partitioned scan runs. Updates never change the key set, so the
  // scan must return exactly the preloaded keys — hot-bucket queueing and
  // all.
  LhrsFile::Options opts;
  opts.file.bucket_capacity = 8;
  opts.group_size = 4;
  opts.policy.base_k = 1;
  LhrsFile file(opts);

  workload::GeneratorOptions gen_opts;
  gen_opts.seed = 89;
  gen_opts.sessions = 2;
  gen_opts.ops_per_session = 150;
  gen_opts.keyspace = 200;
  gen_opts.dist = workload::GeneratorOptions::KeyDist::kZipfian;
  gen_opts.search_fraction = 0.5;
  gen_opts.rmw_fraction = 0.5;
  gen_opts.insert_fraction = 0.0;  // Key set stays fixed.
  workload::WorkloadGenerator gen(gen_opts);

  std::vector<WireRecord> records;
  Rng values(7);
  for (Key k : gen.preload_keys()) {
    records.push_back(WireRecord{k, 0, values.RandomBytes(16)});
  }
  const auto load = BulkLoad(file, records, BulkLoadOptions{});
  ASSERT_EQ(load.applied, records.size());

  // Submit the hot streams without running the loop, then scan: the scan
  // and the skewed traffic share the network from the same instant.
  std::vector<sdds::OpToken> tokens;
  for (size_t s = 0; s < gen_opts.sessions; ++s) {
    while (file.session_count() < gen_opts.sessions) file.AddSession();
    while (auto op = gen.Next(s)) {
      tokens.push_back(file.Submit(s, op->op, op->key, op->value));
    }
  }

  ParallelScanOptions scan_opts;
  scan_opts.partitions = 4;
  auto result = ParallelScan(file, scan_opts);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectSortedAndUnique(result->records);
  ASSERT_EQ(result->records.size(), gen.preload_keys().size());
  std::set<Key> expected(gen.preload_keys().begin(),
                         gen.preload_keys().end());
  for (const WireRecord& rec : result->records) {
    EXPECT_TRUE(expected.contains(rec.key));
  }
  for (sdds::OpToken token : tokens) {
    auto outcome = file.Take(token);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->status.ok());
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(ParallelScanTest, NarrowRangePartitionsCoverInclusiveBounds) {
  LhStarFile::Options opts;
  opts.file.bucket_capacity = 8;
  LhStarFile file(opts);

  const std::vector<Key> keys = MakeKeys(200, 97);  // Returned sorted.
  Rng values(9);
  for (Key k : keys) {
    ASSERT_TRUE(file.Insert(k, values.RandomBytes(8)).ok());
  }
  // Scan the middle half, bounds landing exactly on existing keys.
  const Key lo = keys[50];
  const Key hi = keys[149];
  ParallelScanOptions scan_opts;
  scan_opts.partitions = 5;
  scan_opts.key_min = lo;
  scan_opts.key_max = hi;
  auto result = ParallelScan(file, scan_opts);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectSortedAndUnique(result->records);
  ASSERT_EQ(result->records.size(), 100u);
  EXPECT_EQ(result->records.front().key, lo);
  EXPECT_EQ(result->records.back().key, hi);
}

}  // namespace
}  // namespace lhrs
