// Shrink chaos drill: a data node dies in the middle of a shrink — after
// the first wave of merges, with more deletion-driven merges still to
// come. Across ten seeds (varying the victim bucket) the interrupted
// shrink must finish with surviving contents identical to a no-fault
// oracle run of the same deletion drive: the resumed wave's deletes and
// merges race the crashed bucket's recovery.
//
// The crash itself lands at protocol quiescence (between the waves), per
// the repo's documented fault model: mid-flight parity-delta atomicity is
// out of scope (see EXPERIMENTS.md, known deviations). What the drill
// exercises is everything after — retries into the dead bucket,
// coordinator fallback, recovery racing live merges.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/chaos.h"
#include "common/rng.h"
#include "lhrs/lhrs_file.h"
#include "workload/shrink.h"

namespace lhrs {
namespace {

using chaos::FaultPlan;
using workload::ShrinkByDeletion;
using workload::ShrinkOptions;

LhrsFile::Options Opts() {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = 8;
  opts.file.enable_merge = true;
  opts.group_size = 4;
  opts.policy.base_k = 1;
  return opts;
}

ClientRetryPolicy Resilient(uint64_t seed = 7) {
  ClientRetryPolicy policy;
  policy.enabled = true;
  policy.seed = seed;
  return policy;
}

std::vector<Key> MakeKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::set<Key> keys;
  while (keys.size() < n) keys.insert(rng.Next64());
  return {keys.begin(), keys.end()};
}

void Load(LhrsFile& file, const std::vector<Key>& keys) {
  Rng values(3);
  for (Key k : keys) {
    ASSERT_TRUE(file.Insert(k, values.RandomBytes(16)).ok());
  }
}

std::set<Key> SurvivorKeys(LhrsFile& file) {
  auto scan = file.Scan();
  EXPECT_TRUE(scan.ok()) << scan.status();
  std::set<Key> keys;
  if (scan.ok()) {
    for (const WireRecord& rec : *scan) {
      EXPECT_TRUE(keys.insert(rec.key).second)
          << "duplicate record " << rec.key;
    }
  }
  return keys;
}

TEST(ShrinkChaosTest, CrashMidMergeMatchesNoFaultOracle) {
  const std::vector<Key> keys = MakeKeys(300, 11);

  for (uint64_t seed = 0; seed < 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));

    ShrinkOptions shrink_opts;
    shrink_opts.delete_fraction = 0.75;
    shrink_opts.seed = 101;  // Same victims for oracle and fault runs.

    // Oracle: the identical deletion drive with no faults.
    LhrsFile oracle(Opts());
    Load(oracle, keys);
    const auto oracle_report = ShrinkByDeletion(oracle, keys, shrink_opts);
    ASSERT_EQ(oracle_report.runner.failures, 0u);
    const std::set<Key> oracle_keys = SurvivorKeys(oracle);
    ASSERT_EQ(oracle_keys.size(),
              keys.size() - oracle_report.deleted_keys.size());

    // Fault run: the same drive in two waves. The first wave deletes the
    // front half of the victim window and triggers its merges; then one
    // data node dies; the second wave resumes the drive, its deletes and
    // merges racing the recovery of the crashed bucket.
    LhrsFile file(Opts());
    Load(file, keys);
    while (file.session_count() < shrink_opts.sessions) file.AddSession();
    for (size_t s = 0; s < shrink_opts.sessions; ++s) {
      file.client(s).SetRetryPolicy(Resilient());
    }

    ShrinkOptions first_wave = shrink_opts;
    first_wave.delete_fraction = shrink_opts.delete_fraction / 2;
    const auto first_report = ShrinkByDeletion(file, keys, first_wave);
    EXPECT_EQ(first_report.runner.failures, 0u);

    const BucketNo victim_bucket =
        static_cast<BucketNo>(seed % file.bucket_count());
    const NodeId victim = file.context().allocation.Lookup(victim_bucket);
    FaultPlan plan;
    plan.seed = seed;
    plan.CrashAt(100, victim);
    file.AttachChaos(std::move(plan));
    file.PlayOutChaos();

    ShrinkOptions second_wave = shrink_opts;
    second_wave.resume_fraction = first_wave.delete_fraction;
    const auto report = ShrinkByDeletion(file, keys, second_wave);
    file.DetachChaos();
    file.RecoverAll();
    file.network().RunUntilIdle();

    EXPECT_EQ(report.runner.failures, 0u);
    std::vector<Key> replayed = first_report.deleted_keys;
    replayed.insert(replayed.end(), report.deleted_keys.begin(),
                    report.deleted_keys.end());
    EXPECT_EQ(replayed, oracle_report.deleted_keys)
        << "shrink victim selection must be seed-deterministic";
    const std::set<Key> got = SurvivorKeys(file);
    EXPECT_EQ(got, oracle_keys)
        << "survivors diverged from the no-fault oracle";
    EXPECT_TRUE(file.VerifyParityInvariants().ok());
  }
}

TEST(ShrinkChaosTest, OracleRunActuallyMerges) {
  // Guard for the drill above: the no-fault drive really does shrink the
  // file (otherwise the chaos test would be vacuously comparing two
  // merge-free runs).
  LhrsFile file(Opts());
  const std::vector<Key> keys = MakeKeys(300, 11);
  Load(file, keys);

  ShrinkOptions shrink_opts;
  shrink_opts.delete_fraction = 0.75;
  shrink_opts.seed = 101;
  const auto report = ShrinkByDeletion(file, keys, shrink_opts);
  EXPECT_GT(report.merges, 0u);
  EXPECT_LT(report.buckets_after, report.buckets_before);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

}  // namespace
}  // namespace lhrs
