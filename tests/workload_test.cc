// Tests for the workload generator: Zipf sampling, op-mix accounting, and
// end-to-end runs against the real schemes.

#include <gtest/gtest.h>

#include "analysis/workload.h"
#include "baselines/lhg/lhg_file.h"
#include "lhrs/lhrs_file.h"

namespace lhrs {
namespace {

TEST(ZipfSamplerTest, SkewsTowardLowIndices) {
  ZipfSampler zipf(1000, 0.99);
  Rng rng(1);
  std::vector<int> hits(1000, 0);
  for (int i = 0; i < 100000; ++i) ++hits[zipf.Sample(rng)];
  // Index 0 must be much hotter than index 500.
  EXPECT_GT(hits[0], 20 * std::max(1, hits[500]));
  // And the head (top 10%) should carry the majority of accesses.
  int head = 0;
  for (int i = 0; i < 100; ++i) head += hits[i];
  EXPECT_GT(head, 50000);
}

TEST(ZipfSamplerTest, ThetaZeroIsUniform) {
  ZipfSampler zipf(100, 0.0);
  Rng rng(2);
  std::vector<int> hits(100, 0);
  for (int i = 0; i < 100000; ++i) ++hits[zipf.Sample(rng)];
  for (int h : hits) {
    EXPECT_GT(h, 600);
    EXPECT_LT(h, 1400);
  }
}

TEST(WorkloadSpecTest, Validation) {
  WorkloadSpec spec;
  EXPECT_TRUE(spec.Valid());
  spec.insert_fraction = 0.9;
  EXPECT_FALSE(spec.Valid());  // Sums to > 1.
  spec = WorkloadSpec{};
  spec.value_min = 100;
  spec.value_max = 10;
  EXPECT_FALSE(spec.Valid());
}

TEST(WorkloadRunnerTest, MixApproximatelyHonoured) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = 20;
  opts.group_size = 4;
  opts.policy.base_k = 1;
  LhrsFile file(opts);
  WorkloadSpec spec;  // Default 25/60/10/5.
  Rng rng(3);
  const WorkloadStats stats = RunWorkload(file, spec, 4000, rng);
  EXPECT_EQ(stats.total(), 4000u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_NEAR(stats.inserts / 4000.0, 0.25, 0.05);
  EXPECT_NEAR(stats.searches / 4000.0, 0.60, 0.05);
  EXPECT_NEAR(stats.updates / 4000.0, 0.10, 0.04);
  EXPECT_NEAR(stats.deletes / 4000.0, 0.05, 0.03);
  EXPECT_GT(stats.not_found, 0u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  EXPECT_NE(stats.ToString().find("failures=0"), std::string::npos);
}

TEST(WorkloadRunnerTest, ZipfianSkewAgainstLhrs) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = 20;
  opts.group_size = 4;
  opts.policy.base_k = 2;
  LhrsFile file(opts);
  WorkloadSpec spec;
  spec.skew = WorkloadSpec::Skew::kZipfian;
  Rng rng(4);
  const WorkloadStats stats = RunWorkload(file, spec, 3000, rng);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(WorkloadRunnerTest, RunsAgainstBaselines) {
  lhg::LhgFile::Options opts;
  opts.file.bucket_capacity = 20;
  opts.group_size = 3;
  lhg::LhgFile file(opts);
  WorkloadSpec spec;
  Rng rng(5);
  const WorkloadStats stats = RunWorkload(file, spec, 2000, rng);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

}  // namespace
}  // namespace lhrs
