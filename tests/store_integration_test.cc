// Integration tests for the BucketStore-backed buckets under the real
// protocols: split movement out of churned (compacted) stores, parity
// consistency across tombstone churn, degraded reads and column recovery
// served from buckets whose arenas have been repacked, and oversized
// records that live in dedicated segments.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lhrs/lhrs_file.h"
#include "lhstar/lhstar_file.h"

namespace lhrs {
namespace {

/// A deterministic payload large enough that a few dozen overwrites push a
/// bucket past the compaction threshold (16 KiB dead and dead >= live).
Bytes BigVal(Key key, int round, size_t n = 1024) {
  Bytes v(n);
  Rng rng(key * 1000003 + static_cast<uint64_t>(round));
  for (auto& x : v) x = static_cast<uint8_t>(rng.Next64());
  return v;
}

LhrsFile::Options RsOpts(uint32_t m, uint32_t k, size_t capacity) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = capacity;
  opts.group_size = m;
  opts.policy.base_k = k;
  return opts;
}

/// Total compactions across every LH*RS data bucket.
uint64_t TotalCompactions(const LhrsFile& file) {
  uint64_t total = 0;
  for (BucketNo b = 0; b < file.bucket_count(); ++b) {
    total += file.rs_bucket(b)->records().GetStats().compactions;
  }
  return total;
}

TEST(StoreIntegrationTest, SplitMovesRecordsOutOfCompactedStores) {
  // Churn a small LH* file until stores compact, then keep inserting so
  // splits move records out of repacked arenas. Every key must surface
  // with its latest value regardless of which segment generation held it.
  LhStarFile::Options opts;
  opts.file.bucket_capacity = 8;
  LhStarFile file(opts);

  std::map<Key, Bytes> expected;
  std::vector<Key> keys;
  for (Key k = 1; k <= 24; ++k) keys.push_back(k * 7919);
  for (Key k : keys) ASSERT_TRUE(file.Insert(k, BigVal(k, 0)).ok());
  for (int round = 1; round <= 24; ++round) {
    for (Key k : keys) ASSERT_TRUE(file.Update(k, BigVal(k, round)).ok());
  }
  for (Key k : keys) expected[k] = BigVal(k, 24);

  uint64_t compactions = 0;
  for (BucketNo b = 0; b < file.bucket_count(); ++b) {
    compactions += file.bucket(b)->records().GetStats().compactions;
  }
  ASSERT_GT(compactions, 0u) << "churn never triggered a compaction; the "
                                "scenario is not exercising repacking";

  // Grow the file: splits now stream records out of compacted stores.
  const size_t buckets_before = file.bucket_count();
  for (Key k = 1; k <= 64; ++k) {
    Key fresh = k * 104729 + 1;
    ASSERT_TRUE(file.Insert(fresh, BigVal(fresh, 0)).ok());
    expected[fresh] = BigVal(fresh, 0);
  }
  EXPECT_GT(file.bucket_count(), buckets_before);

  for (const auto& [k, want] : expected) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status();
    EXPECT_EQ(*got, want) << "key " << k;
  }
}

TEST(StoreIntegrationTest, ParityStaysConsistentAcrossCompactionChurn) {
  LhrsFile file(RsOpts(4, 1, /*capacity=*/8));
  std::vector<Key> keys;
  for (Key k = 1; k <= 32; ++k) keys.push_back(k * 6151);
  for (Key k : keys) ASSERT_TRUE(file.Insert(k, BigVal(k, 0)).ok());
  for (int round = 1; round <= 24; ++round) {
    for (Key k : keys) ASSERT_TRUE(file.Update(k, BigVal(k, round)).ok());
  }
  ASSERT_GT(TotalCompactions(file), 0u);
  // Deletes tombstone too; parity must track them through the repack.
  for (size_t i = 0; i < keys.size(); i += 4) {
    ASSERT_TRUE(file.Delete(keys[i]).ok());
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto got = file.Search(keys[i]);
    if (i % 4 == 0) {
      EXPECT_TRUE(got.status().IsNotFound());
    } else {
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(*got, BigVal(keys[i], 24));
    }
  }
}

TEST(StoreIntegrationTest, DegradedReadsServeChurnCompactedRecords) {
  // Degraded reads re-encode the lost column from surviving columns whose
  // stores have been compacted: the served record must be the latest
  // value, not a stale pre-repack slot.
  LhrsFile::Options opts = RsOpts(4, 2, /*capacity=*/8);
  opts.auto_recover = false;
  LhrsFile file(opts);
  std::vector<Key> keys;
  for (Key k = 1; k <= 48; ++k) keys.push_back(k * 4099);
  for (Key k : keys) ASSERT_TRUE(file.Insert(k, BigVal(k, 0)).ok());
  for (int round = 1; round <= 24; ++round) {
    for (Key k : keys) ASSERT_TRUE(file.Update(k, BigVal(k, round)).ok());
  }
  ASSERT_GT(TotalCompactions(file), 0u);
  ASSERT_GT(file.bucket_count(), 1u);

  file.CrashDataBucket(1);
  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status();
    EXPECT_EQ(*got, BigVal(k, 24)) << "key " << k;
  }
  EXPECT_GT(file.rs_coordinator().degraded_reads_served(), 0u);
  EXPECT_EQ(file.rs_coordinator().recoveries_completed(), 0u);
}

TEST(StoreIntegrationTest, RecoveryRebuildsColumnFromCompactedSurvivors) {
  // Full column recovery: survivors dump views of compacted arenas, the
  // spare installs them into a fresh store. Contents and parity must both
  // come back exact.
  LhrsFile file(RsOpts(4, 1, /*capacity=*/8));
  std::vector<Key> keys;
  for (Key k = 1; k <= 48; ++k) keys.push_back(k * 2741);
  for (Key k : keys) ASSERT_TRUE(file.Insert(k, BigVal(k, 0)).ok());
  for (int round = 1; round <= 24; ++round) {
    for (Key k : keys) ASSERT_TRUE(file.Update(k, BigVal(k, round)).ok());
  }
  ASSERT_GT(TotalCompactions(file), 0u);
  ASSERT_GT(file.bucket_count(), 2u);

  NodeId dead = file.CrashDataBucket(2);
  file.DetectAndRecover(dead);
  EXPECT_GE(file.rs_coordinator().recoveries_completed(), 1u);
  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status();
    EXPECT_EQ(*got, BigVal(k, 24));
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(StoreIntegrationTest, OversizedRecordsFlowThroughEveryPath) {
  // Records larger than a store segment (64 KiB) live in dedicated
  // segments; they must survive parity encoding, degraded reads and
  // recovery like any other record.
  LhrsFile file(RsOpts(4, 1, /*capacity=*/1000));
  const size_t big = 100 * 1024;
  std::vector<Key> keys = {3, 5, 6, 7};  // All in bucket 0 (no splits).
  for (Key k : keys) ASSERT_TRUE(file.Insert(k, BigVal(k, 0, big)).ok());
  ASSERT_TRUE(file.Update(5, BigVal(5, 1, big)).ok());
  EXPECT_TRUE(file.VerifyParityInvariants().ok());

  file.CrashDataBucket(0);
  auto got = file.Search(5);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, BigVal(5, 1, big));
  EXPECT_GE(file.rs_coordinator().recoveries_completed(), 1u);
  for (Key k : keys) {
    auto after = file.Search(k);
    ASSERT_TRUE(after.ok()) << "key " << k << ": " << after.status();
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

}  // namespace
}  // namespace lhrs
