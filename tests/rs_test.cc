// Unit and property tests for the Reed-Solomon layer: matrix algebra, the
// normalised-Cauchy generator matrix (MDS property), and the group coder
// (encode, incremental delta updates, erasure decode).

#include <algorithm>
#include <bit>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "gf/gf256.h"
#include "gf/gf65536.h"
#include "parity/parity_code.h"
#include "rs/coder.h"
#include "rs/generator.h"
#include "rs/matrix.h"

namespace lhrs {
namespace {

TEST(MatrixTest, IdentityInversion) {
  auto id = Matrix<GF256>::Identity(5);
  auto inv = id.Inverted();
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(*inv == id);
}

TEST(MatrixTest, RandomInversionRoundTrip) {
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.Uniform(8);
    Matrix<GF256> m(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        m.Set(i, j, static_cast<uint8_t>(rng.Next64()));
      }
    }
    auto inv = m.Inverted();
    if (!inv.ok()) continue;  // Singular draw; skip.
    auto prod = m.Mul(*inv);
    EXPECT_TRUE(prod == Matrix<GF256>::Identity(n));
  }
}

TEST(MatrixTest, SingularMatrixRejected) {
  Matrix<GF256> m(2, 2);
  m.Set(0, 0, 3);
  m.Set(0, 1, 5);
  m.Set(1, 0, 3);
  m.Set(1, 1, 5);  // Equal rows.
  auto inv = m.Inverted();
  EXPECT_FALSE(inv.ok());
  EXPECT_TRUE(inv.status().IsInvalidArgument());
  EXPECT_EQ(m.Determinant(), 0);
}

TEST(MatrixTest, DeterminantMatchesInvertibility) {
  Rng rng(103);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 1 + rng.Uniform(5);
    Matrix<GF256> m(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        m.Set(i, j, static_cast<uint8_t>(rng.Next64()));
      }
    }
    EXPECT_EQ(m.Determinant() != 0, m.Inverted().ok());
  }
}

TEST(GeneratorTest, FirstColumnAllOnes) {
  for (uint32_t m : {1u, 2u, 4u, 8u, 16u}) {
    for (uint32_t k : {1u, 2u, 3u, 4u}) {
      auto p = BuildParityMatrix<GF256>(m, k);
      ASSERT_TRUE(p.ok());
      for (uint32_t i = 0; i < m; ++i) {
        EXPECT_EQ(p->At(i, 0), 1) << "m=" << m << " k=" << k << " i=" << i;
      }
      for (uint32_t j = 0; j < k; ++j) {
        EXPECT_EQ(p->At(0, j), 1) << "first row must be all ones";
      }
    }
  }
}

TEST(GeneratorTest, RejectsInvalidParameters) {
  EXPECT_FALSE(BuildParityMatrix<GF256>(0, 1).ok());
  EXPECT_FALSE(BuildParityMatrix<GF256>(1, 0).ok());
  EXPECT_FALSE(BuildParityMatrix<GF256>(200, 100).ok());  // m + k > 256.
  EXPECT_TRUE(BuildParityMatrix<GF256>(128, 128).ok());
}

// The central correctness property: every square submatrix of the parity
// matrix must be nonsingular, which makes the systematic code MDS.
class MdsPropertyTest
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(MdsPropertyTest, CauchyDerivedMatrixIsMds) {
  const auto [m, k] = GetParam();
  auto p = BuildParityMatrix<GF256>(m, k);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(IsMdsParityMatrix(*p)) << "m=" << m << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    AllGeometries, MdsPropertyTest,
    ::testing::Values(std::pair{2u, 1u}, std::pair{2u, 2u}, std::pair{3u, 2u},
                      std::pair{4u, 1u}, std::pair{4u, 2u}, std::pair{4u, 3u},
                      std::pair{4u, 4u}, std::pair{8u, 2u}, std::pair{8u, 3u},
                      std::pair{16u, 3u}, std::pair{16u, 4u},
                      std::pair{32u, 4u}));

TEST(MdsPropertyTest, CauchyMatrixIsMdsOverGf65536Too) {
  auto p = BuildParityMatrix<GF65536>(8, 3);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(IsMdsParityMatrix(*p));
}

// Ablation: the naive Vandermonde-style construction alpha^(i*j) appended
// to an identity is NOT MDS in general — the reason LH*RS needs the
// Cauchy-derived generator. A 2x2 submatrix with rows {i1, i2} and columns
// {j1, j2} is singular iff (i1-i2)(j1-j2) = 0 mod 255; the smallest such
// geometry within field bounds is m = 86 (row gap 85), k = 4 (column gap
// 3), since 85 * 3 = 255.
TEST(GeneratorTest, NaiveVandermondeFailsMdsForLargeGroups) {
  auto p = BuildNaiveVandermondeParity<GF256>(86, 4);
  auto sub = p.Submatrix({0, 85}, {0, 3});
  EXPECT_EQ(sub.Determinant(), 0)
      << "expected singular submatrix in naive Vandermonde parity";
  // The Cauchy-derived matrix of the same geometry has no such defect.
  auto cauchy = BuildParityMatrix<GF256>(86, 4);
  ASSERT_TRUE(cauchy.ok());
  EXPECT_NE(cauchy->Submatrix({0, 85}, {0, 3}).Determinant(), 0);
}

// ---------------------------------------------------------------------------
// GroupCoder tests.

template <typename F>
class GroupCoderTest : public ::testing::Test {};

using CoderFields = ::testing::Types<GF256, GF65536>;
TYPED_TEST_SUITE(GroupCoderTest, CoderFields);

TYPED_TEST(GroupCoderTest, EncodeDecodeRoundTripAllErasurePatterns) {
  const uint32_t m = 4, k = 2;
  GroupCoder<TypeParam> coder(m, k);
  Rng rng(211);

  // Variable-length member payloads, one slot empty.
  std::vector<Bytes> data(m);
  data[0] = rng.RandomBytes(40);
  data[1] = rng.RandomBytes(17);
  data[2] = {};  // Absent member.
  data[3] = rng.RandomBytes(33);
  std::vector<const Bytes*> ptrs = {&data[0], &data[1], nullptr, &data[3]};
  std::vector<Bytes> parity = coder.Encode(ptrs);
  ASSERT_EQ(parity.size(), k);

  // Every way of losing up to k of the m+k columns must decode.
  for (uint32_t lost1 = 0; lost1 < m; ++lost1) {
    for (uint32_t lost2 = lost1 + 1; lost2 <= m + k; ++lost2) {
      std::vector<std::pair<size_t, Bytes>> available;
      for (uint32_t col = 0; col < m + k; ++col) {
        if (col == lost1 || col == lost2) continue;
        if (col < m) {
          available.emplace_back(col, data[col]);
        } else {
          available.emplace_back(col, parity[col - m]);
        }
      }
      std::vector<size_t> wanted;
      if (lost1 < m) wanted.push_back(lost1);
      if (lost2 < m) wanted.push_back(lost2);
      if (wanted.empty()) continue;
      auto decoded = coder.DecodeData(available, wanted);
      ASSERT_TRUE(decoded.ok()) << decoded.status();
      for (size_t i = 0; i < wanted.size(); ++i) {
        const Bytes& original = data[wanted[i]];
        const Bytes padded = PadTo(original, (*decoded)[i].size());
        EXPECT_EQ((*decoded)[i], padded)
            << "lost (" << lost1 << "," << lost2 << ") slot " << wanted[i];
      }
    }
  }
}

TYPED_TEST(GroupCoderTest, TooFewColumnsIsDataLoss) {
  GroupCoder<TypeParam> coder(4, 2);
  std::vector<std::pair<size_t, Bytes>> available = {
      {0, Bytes{1, 2}}, {1, Bytes{3, 4}}, {2, Bytes{5, 6}}};
  auto decoded = coder.DecodeData(available, {3});
  EXPECT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsDataLoss());
}

TYPED_TEST(GroupCoderTest, DeltaUpdatesMatchFullReencode) {
  const uint32_t m = 4, k = 3;
  GroupCoder<TypeParam> coder(m, k);
  Rng rng(223);

  std::vector<Bytes> data(m);
  std::vector<Bytes> parity(k);

  // Build the group incrementally: insert, update, delete, with varying
  // lengths; parity maintained only through ApplyDelta.
  for (int step = 0; step < 200; ++step) {
    const uint32_t slot = static_cast<uint32_t>(rng.Uniform(m));
    const int action = static_cast<int>(rng.Uniform(3));
    if (action == 0 || data[slot].empty()) {
      // Insert/overwrite with a fresh value: delta = old XOR new.
      Bytes next = rng.RandomBytes(1 + rng.Uniform(64));
      Bytes delta = data[slot];
      XorAssignPadded(delta, next);
      for (uint32_t j = 0; j < k; ++j) {
        coder.ApplyDelta(slot, delta, j, &parity[j]);
      }
      data[slot] = std::move(next);
    } else if (action == 1) {
      // Delete: delta = old value.
      for (uint32_t j = 0; j < k; ++j) {
        coder.ApplyDelta(slot, data[slot], j, &parity[j]);
      }
      data[slot].clear();
    } else {
      // In-place partial update.
      Bytes next = data[slot];
      next[rng.Uniform(next.size())] ^= static_cast<uint8_t>(rng.Next64());
      Bytes delta = data[slot];
      XorAssignPadded(delta, next);
      for (uint32_t j = 0; j < k; ++j) {
        coder.ApplyDelta(slot, delta, j, &parity[j]);
      }
      data[slot] = std::move(next);
    }
  }

  // Full re-encode must agree (modulo trailing zeros from length churn).
  std::vector<const Bytes*> ptrs;
  for (auto& d : data) ptrs.push_back(d.empty() ? nullptr : &d);
  std::vector<Bytes> fresh = coder.Encode(ptrs);
  for (uint32_t j = 0; j < k; ++j) {
    const size_t n = std::max(fresh[j].size(), parity[j].size());
    const Bytes a = PadTo(fresh[j], n);
    const Bytes b = PadTo(parity[j], n);
    EXPECT_EQ(a, b) << "parity column " << j;
  }
}

TYPED_TEST(GroupCoderTest, ParityColumnZeroIsPlainXor) {
  const uint32_t m = 4;
  GroupCoder<TypeParam> coder(m, 2);
  Rng rng(227);
  std::vector<Bytes> data(m);
  for (auto& d : data) d = rng.RandomBytes(32);
  std::vector<const Bytes*> ptrs;
  for (auto& d : data) ptrs.push_back(&d);
  std::vector<Bytes> parity = coder.Encode(ptrs);

  Bytes expected(32, 0);
  for (const auto& d : data) {
    for (size_t i = 0; i < 32; ++i) expected[i] ^= d[i];
  }
  EXPECT_EQ(parity[0], expected);
}

TYPED_TEST(GroupCoderTest, SingleMemberGroupDecodesFromParityAlone) {
  // The paper's "a record sole in its group is recoverable even if all
  // other buckets fail" case: decode from k parity columns + m-1 known
  // zeros.
  const uint32_t m = 4, k = 1;
  GroupCoder<TypeParam> coder(m, k);
  Bytes value = BytesFromString("lonely record");
  std::vector<const Bytes*> ptrs = {nullptr, &value, nullptr, nullptr};
  std::vector<Bytes> parity = coder.Encode(ptrs);

  std::vector<std::pair<size_t, Bytes>> available = {
      {0, {}}, {2, {}}, {3, {}}, {4, parity[0]}};
  auto decoded = coder.DecodeData(available, {1});
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0], PadTo(value, (*decoded)[0].size()));
}

TEST(GroupCoderTest65536, PadsOddLengthsToWholeSymbols) {
  GroupCoder<GF65536> coder(2, 1);
  Bytes odd = {0xAB, 0xCD, 0xEF};  // 3 bytes -> padded to 4.
  std::vector<const Bytes*> ptrs = {&odd, nullptr};
  std::vector<Bytes> parity = coder.Encode(ptrs);
  ASSERT_EQ(parity[0].size(), 4u);
  EXPECT_EQ(parity[0][0], 0xAB);
  EXPECT_EQ(parity[0][3], 0x00);
}

// ---------------------------------------------------------------------------
// ParityCode interface tests: the RsCode oracle, the MDS any-m-subset
// property over random geometries, progressive decoding, and the LRC code.

template <typename F>
FieldChoice FieldChoiceOf();
template <>
FieldChoice FieldChoiceOf<GF256>() {
  return FieldChoice::kGf256;
}
template <>
FieldChoice FieldChoiceOf<GF65536>() {
  return FieldChoice::kGf65536;
}

std::unique_ptr<parity::ParityCode> MakeCode(const char* name, uint32_t m,
                                             uint32_t k, FieldChoice field) {
  auto spec = parity::CodeSpec::Parse(name);
  LHRS_CHECK(spec.ok());
  auto code = parity::MakeParityCode(*spec, m, k, field);
  LHRS_CHECK(code.ok());
  return std::move(code).value();
}

// The MDS property, end to end: for random (m, k) geometries and random
// variable-length payloads, EVERY m-subset of the m + k codeword columns
// reconstructs every data column — through both the legacy GroupCoder and
// the interface-built RsCode, which must agree byte for byte.
TYPED_TEST(GroupCoderTest, AnyMSubsetReconstructsRandomGeometry) {
  Rng rng(811);
  for (int trial = 0; trial < 6; ++trial) {
    const uint32_t m = 1 + static_cast<uint32_t>(rng.Uniform(7));
    const uint32_t k = 1 + static_cast<uint32_t>(rng.Uniform(3));
    const uint32_t n = m + k;  // <= 10, so subsets enumerate exhaustively.
    GroupCoder<TypeParam> coder(m, k);
    auto code = MakeCode("rs", m, k, FieldChoiceOf<TypeParam>());

    std::vector<Bytes> data(m);
    std::vector<const Bytes*> ptrs(m);
    for (uint32_t i = 0; i < m; ++i) {
      data[i] = rng.RandomBytes(rng.Uniform(25));  // May be empty.
      ptrs[i] = data[i].empty() ? nullptr : &data[i];
    }
    std::vector<Bytes> parity = coder.Encode(ptrs);
    ASSERT_EQ(code->Encode(ptrs), parity)
        << "RsCode must be byte-identical to GroupCoder";

    for (uint32_t mask = 0; mask < (1u << n); ++mask) {
      if (std::popcount(mask) != static_cast<int>(m)) continue;
      std::vector<std::pair<size_t, Bytes>> available;
      std::vector<uint32_t> have;
      std::vector<size_t> wanted;
      for (uint32_t col = 0; col < n; ++col) {
        if (mask & (1u << col)) {
          available.emplace_back(col,
                                 col < m ? data[col] : parity[col - m]);
          have.push_back(col);
        } else if (col < m) {
          wanted.push_back(col);
        }
      }
      if (wanted.empty()) continue;
      EXPECT_TRUE(code->CanDecodeFrom(
          have, std::vector<uint32_t>(wanted.begin(), wanted.end())));
      auto decoded = code->DecodeData(available, wanted);
      ASSERT_TRUE(decoded.ok())
          << "m=" << m << " k=" << k << " mask=" << mask << ": "
          << decoded.status();
      auto legacy = coder.DecodeData(available, wanted);
      ASSERT_TRUE(legacy.ok());
      EXPECT_EQ(*decoded, *legacy) << "interface and legacy decode differ";
      for (size_t i = 0; i < wanted.size(); ++i) {
        EXPECT_EQ((*decoded)[i], PadTo(data[wanted[i]], (*decoded)[i].size()))
            << "m=" << m << " k=" << k << " mask=" << mask << " slot "
            << wanted[i];
      }
    }
  }
}

TYPED_TEST(GroupCoderTest, ProgressiveDecoderFinishesEarly) {
  const uint32_t m = 4, k = 2;
  auto code = MakeCode("rs+prog", m, k, FieldChoiceOf<TypeParam>());
  Rng rng(821);
  std::vector<Bytes> data(m);
  data[0] = rng.RandomBytes(16);
  data[1] = rng.RandomBytes(16);
  std::vector<const Bytes*> ptrs = {&data[0], &data[1], nullptr, nullptr};
  std::vector<Bytes> parity = code->Encode(ptrs);

  // Slot 1 lost; slots 2 and 3 never existed (known zero). Rank m is
  // reached after only two survivor columns even though two parity
  // columns are also alive.
  auto dec = code->NewProgressiveDecoder({1}, {2, 3});
  EXPECT_FALSE(dec->Ready());
  EXPECT_TRUE(dec->AddColumn(0, BufferView(data[0])));
  EXPECT_FALSE(dec->Ready());
  EXPECT_TRUE(dec->AddColumn(m + 0, BufferView(parity[0])));
  EXPECT_TRUE(dec->Ready());
  EXPECT_EQ(dec->columns_used(), 2u);

  // Surplus survivors past full rank are redundant and must be rejected.
  EXPECT_FALSE(dec->AddColumn(m + 1, BufferView(parity[1])));
  EXPECT_EQ(dec->columns_used(), 2u);

  auto decoded = dec->Decode();
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_EQ((*decoded)[0], PadTo(data[1], (*decoded)[0].size()));
}

TYPED_TEST(GroupCoderTest, ProgressiveDecoderAcceptsColumnsOutOfOrder) {
  const uint32_t m = 4, k = 3;
  auto code = MakeCode("rs+prog", m, k, FieldChoiceOf<TypeParam>());
  Rng rng(823);
  std::vector<Bytes> data(m);
  std::vector<const Bytes*> ptrs(m);
  for (uint32_t i = 0; i < m; ++i) {
    data[i] = rng.RandomBytes(12);
    ptrs[i] = &data[i];
  }
  std::vector<Bytes> parity = code->Encode(ptrs);

  // All parity first, then one data column: any arrival order works.
  auto dec = code->NewProgressiveDecoder({0, 2}, {});
  EXPECT_TRUE(dec->AddColumn(m + 2, BufferView(parity[2])));
  EXPECT_TRUE(dec->AddColumn(m + 0, BufferView(parity[0])));
  EXPECT_TRUE(dec->AddColumn(m + 1, BufferView(parity[1])));
  EXPECT_FALSE(dec->Ready()) << "rank 3 of 4 cannot solve yet";
  EXPECT_TRUE(dec->AddColumn(3, BufferView(data[3])));
  EXPECT_TRUE(dec->Ready());

  auto decoded = dec->Decode();
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0], PadTo(data[0], (*decoded)[0].size()));
  EXPECT_EQ((*decoded)[1], PadTo(data[2], (*decoded)[1].size()));
}

TYPED_TEST(GroupCoderTest, ProgressiveDecoderInsufficientRankIsDataLoss) {
  const uint32_t m = 4, k = 2;
  auto code = MakeCode("rs+prog", m, k, FieldChoiceOf<TypeParam>());
  Rng rng(827);
  std::vector<Bytes> data(m);
  std::vector<const Bytes*> ptrs(m);
  for (uint32_t i = 0; i < m; ++i) {
    data[i] = rng.RandomBytes(8);
    ptrs[i] = &data[i];
  }
  std::vector<Bytes> parity = code->Encode(ptrs);

  auto dec = code->NewProgressiveDecoder({0, 1}, {});
  EXPECT_TRUE(dec->AddColumn(2, BufferView(data[2])));
  EXPECT_TRUE(dec->AddColumn(3, BufferView(data[3])));
  EXPECT_TRUE(dec->AddColumn(m + 0, BufferView(parity[0])));
  EXPECT_FALSE(dec->Ready()) << "three columns cannot solve two unknowns + "
                                "two knowns over rank four";
  auto decoded = dec->Decode();
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsDataLoss());

  // The missing fourth column completes the rank.
  EXPECT_TRUE(dec->AddColumn(m + 1, BufferView(parity[1])));
  EXPECT_TRUE(dec->Ready());
  EXPECT_TRUE(dec->Decode().ok());
}

// ---------------------------------------------------------------------------
// LRC code tests (m = 4, locality 2, k = 3: two local XORs + one global).

TYPED_TEST(GroupCoderTest, LrcLocalColumnsAreGroupXors) {
  auto code = MakeCode("lrc2", 4, 3, FieldChoiceOf<TypeParam>());
  Rng rng(829);
  std::vector<Bytes> data(4);
  std::vector<const Bytes*> ptrs(4);
  for (uint32_t i = 0; i < 4; ++i) {
    data[i] = rng.RandomBytes(32);
    ptrs[i] = &data[i];
  }
  std::vector<Bytes> parity = code->Encode(ptrs);
  ASSERT_EQ(parity.size(), 3u);
  for (uint32_t l = 0; l < 2; ++l) {
    Bytes expected(32, 0);
    for (uint32_t s = 2 * l; s < 2 * l + 2; ++s) {
      for (size_t i = 0; i < 32; ++i) expected[i] ^= data[s][i];
    }
    EXPECT_EQ(parity[l], expected) << "local parity " << l;
  }
}

TYPED_TEST(GroupCoderTest, LrcSingleLossRepairsFromLocalGroupOnly) {
  auto code = MakeCode("lrc2", 4, 3, FieldChoiceOf<TypeParam>());
  parity::RepairContext ctx;
  ctx.existing_slots = 4;
  ctx.alive_data = {1, 2, 3};
  ctx.alive_parity = {0, 1, 2};
  ctx.missing = {0};
  auto plan = code->PlanRepair(ctx);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Slot 0's local group is {0, 1} with local parity column 4: the repair
  // touches r = 2 columns, not the RS code's m = 4.
  EXPECT_EQ(plan->read_columns, (std::vector<uint32_t>{1, 4}));

  // The slot's own local parity leads the preference order.
  EXPECT_EQ(code->ParityPreference(0)[0], 0u);
  EXPECT_EQ(code->ParityPreference(3)[0], 1u);
}

TYPED_TEST(GroupCoderTest, LrcRecoversDoubleLossViaGlobalParity) {
  auto code = MakeCode("lrc2", 4, 3, FieldChoiceOf<TypeParam>());
  Rng rng(839);
  std::vector<Bytes> data(4);
  std::vector<const Bytes*> ptrs(4);
  for (uint32_t i = 0; i < 4; ++i) {
    data[i] = rng.RandomBytes(20);
    ptrs[i] = &data[i];
  }
  std::vector<Bytes> parity = code->Encode(ptrs);

  // Both members of local group 0 lost: the local XOR alone cannot split
  // them, but together with the global column the pair is determined.
  std::vector<std::pair<size_t, Bytes>> available = {
      {2, data[2]}, {3, data[3]}, {4, parity[0]}, {5, parity[1]},
      {6, parity[2]}};
  auto decoded = code->DecodeData(available, {0, 1});
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ((*decoded)[0], PadTo(data[0], (*decoded)[0].size()));
  EXPECT_EQ((*decoded)[1], PadTo(data[1], (*decoded)[1].size()));
}

TYPED_TEST(GroupCoderTest, LrcNonMdsPatternIsDataLoss) {
  auto code = MakeCode("lrc2", 4, 3, FieldChoiceOf<TypeParam>());
  // Losing both members of a local group AND its local parity leaves one
  // equation (the global) for two unknowns. An MDS code with k = 3 would
  // survive any three losses; the LRC trades that away for locality.
  EXPECT_FALSE(code->CanDecodeFrom({2, 3, 5, 6}, {0, 1}));

  parity::RepairContext ctx;
  ctx.existing_slots = 4;
  ctx.alive_data = {2, 3};
  ctx.alive_parity = {1, 2};
  ctx.missing = {0, 1, 4};
  auto plan = code->PlanRepair(ctx);
  ASSERT_FALSE(plan.ok());
  EXPECT_TRUE(plan.status().IsDataLoss());

  Rng rng(853);
  std::vector<Bytes> data(4);
  std::vector<const Bytes*> ptrs(4);
  for (uint32_t i = 0; i < 4; ++i) {
    data[i] = rng.RandomBytes(16);
    ptrs[i] = &data[i];
  }
  std::vector<Bytes> parity = code->Encode(ptrs);
  std::vector<std::pair<size_t, Bytes>> available = {
      {2, data[2]}, {3, data[3]}, {5, parity[1]}, {6, parity[2]}};
  auto decoded = code->DecodeData(available, {0, 1});
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsDataLoss());
}

TYPED_TEST(GroupCoderTest, LrcProgressiveDecoderStopsAtLocalGroup) {
  auto code = MakeCode("lrc2+prog", 4, 3, FieldChoiceOf<TypeParam>());
  Rng rng(857);
  std::vector<Bytes> data(4);
  std::vector<const Bytes*> ptrs(4);
  for (uint32_t i = 0; i < 4; ++i) {
    data[i] = rng.RandomBytes(24);
    ptrs[i] = &data[i];
  }
  std::vector<Bytes> parity = code->Encode(ptrs);

  // Rebuilding slot 2 needs only its sibling and the group-1 local parity:
  // Ready() fires after two columns even though full rank would need four.
  auto dec = code->NewProgressiveDecoder({2}, {});
  EXPECT_TRUE(dec->AddColumn(3, BufferView(data[3])));
  EXPECT_FALSE(dec->Ready());
  EXPECT_TRUE(dec->AddColumn(4 + 1, BufferView(parity[1])));
  EXPECT_TRUE(dec->Ready());
  EXPECT_EQ(dec->columns_used(), 2u);

  auto decoded = dec->Decode();
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ((*decoded)[0], PadTo(data[2], (*decoded)[0].size()));
}

TEST(CodeSpecTest, NameParseRoundTrips) {
  for (const char* name : {"rs", "rs+prog", "lrc2", "lrc4+prog"}) {
    auto spec = parity::CodeSpec::Parse(name);
    ASSERT_TRUE(spec.ok()) << name;
    EXPECT_EQ(spec->Name(), name);
  }
  EXPECT_FALSE(parity::CodeSpec::Parse("raid5").ok());
  EXPECT_FALSE(parity::CodeSpec::Parse("lrc").ok());
  EXPECT_FALSE(parity::CodeSpec::Parse("lrcx").ok());
}

TEST(CodeSpecTest, MakeParityCodeRejectsBadGeometry) {
  auto lrc = parity::CodeSpec::Parse("lrc2");
  ASSERT_TRUE(lrc.ok());
  // m = 4, locality 2 means two local groups; k = 1 cannot cover them.
  EXPECT_FALSE(
      parity::MakeParityCode(*lrc, 4, 1, FieldChoice::kGf256).ok());
  EXPECT_TRUE(
      parity::MakeParityCode(*lrc, 4, 2, FieldChoice::kGf256).ok());
  auto rs = parity::CodeSpec::Parse("rs");
  ASSERT_TRUE(rs.ok());
  EXPECT_FALSE(
      parity::MakeParityCode(*rs, 200, 100, FieldChoice::kGf256).ok());
}

}  // namespace
}  // namespace lhrs
