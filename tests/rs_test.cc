// Unit and property tests for the Reed-Solomon layer: matrix algebra, the
// normalised-Cauchy generator matrix (MDS property), and the group coder
// (encode, incremental delta updates, erasure decode).

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gf/gf256.h"
#include "gf/gf65536.h"
#include "rs/coder.h"
#include "rs/generator.h"
#include "rs/matrix.h"

namespace lhrs {
namespace {

TEST(MatrixTest, IdentityInversion) {
  auto id = Matrix<GF256>::Identity(5);
  auto inv = id.Inverted();
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(*inv == id);
}

TEST(MatrixTest, RandomInversionRoundTrip) {
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.Uniform(8);
    Matrix<GF256> m(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        m.Set(i, j, static_cast<uint8_t>(rng.Next64()));
      }
    }
    auto inv = m.Inverted();
    if (!inv.ok()) continue;  // Singular draw; skip.
    auto prod = m.Mul(*inv);
    EXPECT_TRUE(prod == Matrix<GF256>::Identity(n));
  }
}

TEST(MatrixTest, SingularMatrixRejected) {
  Matrix<GF256> m(2, 2);
  m.Set(0, 0, 3);
  m.Set(0, 1, 5);
  m.Set(1, 0, 3);
  m.Set(1, 1, 5);  // Equal rows.
  auto inv = m.Inverted();
  EXPECT_FALSE(inv.ok());
  EXPECT_TRUE(inv.status().IsInvalidArgument());
  EXPECT_EQ(m.Determinant(), 0);
}

TEST(MatrixTest, DeterminantMatchesInvertibility) {
  Rng rng(103);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 1 + rng.Uniform(5);
    Matrix<GF256> m(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        m.Set(i, j, static_cast<uint8_t>(rng.Next64()));
      }
    }
    EXPECT_EQ(m.Determinant() != 0, m.Inverted().ok());
  }
}

TEST(GeneratorTest, FirstColumnAllOnes) {
  for (uint32_t m : {1u, 2u, 4u, 8u, 16u}) {
    for (uint32_t k : {1u, 2u, 3u, 4u}) {
      auto p = BuildParityMatrix<GF256>(m, k);
      ASSERT_TRUE(p.ok());
      for (uint32_t i = 0; i < m; ++i) {
        EXPECT_EQ(p->At(i, 0), 1) << "m=" << m << " k=" << k << " i=" << i;
      }
      for (uint32_t j = 0; j < k; ++j) {
        EXPECT_EQ(p->At(0, j), 1) << "first row must be all ones";
      }
    }
  }
}

TEST(GeneratorTest, RejectsInvalidParameters) {
  EXPECT_FALSE(BuildParityMatrix<GF256>(0, 1).ok());
  EXPECT_FALSE(BuildParityMatrix<GF256>(1, 0).ok());
  EXPECT_FALSE(BuildParityMatrix<GF256>(200, 100).ok());  // m + k > 256.
  EXPECT_TRUE(BuildParityMatrix<GF256>(128, 128).ok());
}

// The central correctness property: every square submatrix of the parity
// matrix must be nonsingular, which makes the systematic code MDS.
class MdsPropertyTest
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(MdsPropertyTest, CauchyDerivedMatrixIsMds) {
  const auto [m, k] = GetParam();
  auto p = BuildParityMatrix<GF256>(m, k);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(IsMdsParityMatrix(*p)) << "m=" << m << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    AllGeometries, MdsPropertyTest,
    ::testing::Values(std::pair{2u, 1u}, std::pair{2u, 2u}, std::pair{3u, 2u},
                      std::pair{4u, 1u}, std::pair{4u, 2u}, std::pair{4u, 3u},
                      std::pair{4u, 4u}, std::pair{8u, 2u}, std::pair{8u, 3u},
                      std::pair{16u, 3u}, std::pair{16u, 4u},
                      std::pair{32u, 4u}));

TEST(MdsPropertyTest, CauchyMatrixIsMdsOverGf65536Too) {
  auto p = BuildParityMatrix<GF65536>(8, 3);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(IsMdsParityMatrix(*p));
}

// Ablation: the naive Vandermonde-style construction alpha^(i*j) appended
// to an identity is NOT MDS in general — the reason LH*RS needs the
// Cauchy-derived generator. A 2x2 submatrix with rows {i1, i2} and columns
// {j1, j2} is singular iff (i1-i2)(j1-j2) = 0 mod 255; the smallest such
// geometry within field bounds is m = 86 (row gap 85), k = 4 (column gap
// 3), since 85 * 3 = 255.
TEST(GeneratorTest, NaiveVandermondeFailsMdsForLargeGroups) {
  auto p = BuildNaiveVandermondeParity<GF256>(86, 4);
  auto sub = p.Submatrix({0, 85}, {0, 3});
  EXPECT_EQ(sub.Determinant(), 0)
      << "expected singular submatrix in naive Vandermonde parity";
  // The Cauchy-derived matrix of the same geometry has no such defect.
  auto cauchy = BuildParityMatrix<GF256>(86, 4);
  ASSERT_TRUE(cauchy.ok());
  EXPECT_NE(cauchy->Submatrix({0, 85}, {0, 3}).Determinant(), 0);
}

// ---------------------------------------------------------------------------
// GroupCoder tests.

template <typename F>
class GroupCoderTest : public ::testing::Test {};

using CoderFields = ::testing::Types<GF256, GF65536>;
TYPED_TEST_SUITE(GroupCoderTest, CoderFields);

TYPED_TEST(GroupCoderTest, EncodeDecodeRoundTripAllErasurePatterns) {
  const uint32_t m = 4, k = 2;
  GroupCoder<TypeParam> coder(m, k);
  Rng rng(211);

  // Variable-length member payloads, one slot empty.
  std::vector<Bytes> data(m);
  data[0] = rng.RandomBytes(40);
  data[1] = rng.RandomBytes(17);
  data[2] = {};  // Absent member.
  data[3] = rng.RandomBytes(33);
  std::vector<const Bytes*> ptrs = {&data[0], &data[1], nullptr, &data[3]};
  std::vector<Bytes> parity = coder.Encode(ptrs);
  ASSERT_EQ(parity.size(), k);

  // Every way of losing up to k of the m+k columns must decode.
  for (uint32_t lost1 = 0; lost1 < m; ++lost1) {
    for (uint32_t lost2 = lost1 + 1; lost2 <= m + k; ++lost2) {
      std::vector<std::pair<size_t, Bytes>> available;
      for (uint32_t col = 0; col < m + k; ++col) {
        if (col == lost1 || col == lost2) continue;
        if (col < m) {
          available.emplace_back(col, data[col]);
        } else {
          available.emplace_back(col, parity[col - m]);
        }
      }
      std::vector<size_t> wanted;
      if (lost1 < m) wanted.push_back(lost1);
      if (lost2 < m) wanted.push_back(lost2);
      if (wanted.empty()) continue;
      auto decoded = coder.DecodeData(available, wanted);
      ASSERT_TRUE(decoded.ok()) << decoded.status();
      for (size_t i = 0; i < wanted.size(); ++i) {
        const Bytes& original = data[wanted[i]];
        const Bytes padded = PadTo(original, (*decoded)[i].size());
        EXPECT_EQ((*decoded)[i], padded)
            << "lost (" << lost1 << "," << lost2 << ") slot " << wanted[i];
      }
    }
  }
}

TYPED_TEST(GroupCoderTest, TooFewColumnsIsDataLoss) {
  GroupCoder<TypeParam> coder(4, 2);
  std::vector<std::pair<size_t, Bytes>> available = {
      {0, Bytes{1, 2}}, {1, Bytes{3, 4}}, {2, Bytes{5, 6}}};
  auto decoded = coder.DecodeData(available, {3});
  EXPECT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsDataLoss());
}

TYPED_TEST(GroupCoderTest, DeltaUpdatesMatchFullReencode) {
  const uint32_t m = 4, k = 3;
  GroupCoder<TypeParam> coder(m, k);
  Rng rng(223);

  std::vector<Bytes> data(m);
  std::vector<Bytes> parity(k);

  // Build the group incrementally: insert, update, delete, with varying
  // lengths; parity maintained only through ApplyDelta.
  for (int step = 0; step < 200; ++step) {
    const uint32_t slot = static_cast<uint32_t>(rng.Uniform(m));
    const int action = static_cast<int>(rng.Uniform(3));
    if (action == 0 || data[slot].empty()) {
      // Insert/overwrite with a fresh value: delta = old XOR new.
      Bytes next = rng.RandomBytes(1 + rng.Uniform(64));
      Bytes delta = data[slot];
      XorAssignPadded(delta, next);
      for (uint32_t j = 0; j < k; ++j) {
        coder.ApplyDelta(slot, delta, j, &parity[j]);
      }
      data[slot] = std::move(next);
    } else if (action == 1) {
      // Delete: delta = old value.
      for (uint32_t j = 0; j < k; ++j) {
        coder.ApplyDelta(slot, data[slot], j, &parity[j]);
      }
      data[slot].clear();
    } else {
      // In-place partial update.
      Bytes next = data[slot];
      next[rng.Uniform(next.size())] ^= static_cast<uint8_t>(rng.Next64());
      Bytes delta = data[slot];
      XorAssignPadded(delta, next);
      for (uint32_t j = 0; j < k; ++j) {
        coder.ApplyDelta(slot, delta, j, &parity[j]);
      }
      data[slot] = std::move(next);
    }
  }

  // Full re-encode must agree (modulo trailing zeros from length churn).
  std::vector<const Bytes*> ptrs;
  for (auto& d : data) ptrs.push_back(d.empty() ? nullptr : &d);
  std::vector<Bytes> fresh = coder.Encode(ptrs);
  for (uint32_t j = 0; j < k; ++j) {
    const size_t n = std::max(fresh[j].size(), parity[j].size());
    const Bytes a = PadTo(fresh[j], n);
    const Bytes b = PadTo(parity[j], n);
    EXPECT_EQ(a, b) << "parity column " << j;
  }
}

TYPED_TEST(GroupCoderTest, ParityColumnZeroIsPlainXor) {
  const uint32_t m = 4;
  GroupCoder<TypeParam> coder(m, 2);
  Rng rng(227);
  std::vector<Bytes> data(m);
  for (auto& d : data) d = rng.RandomBytes(32);
  std::vector<const Bytes*> ptrs;
  for (auto& d : data) ptrs.push_back(&d);
  std::vector<Bytes> parity = coder.Encode(ptrs);

  Bytes expected(32, 0);
  for (const auto& d : data) {
    for (size_t i = 0; i < 32; ++i) expected[i] ^= d[i];
  }
  EXPECT_EQ(parity[0], expected);
}

TYPED_TEST(GroupCoderTest, SingleMemberGroupDecodesFromParityAlone) {
  // The paper's "a record sole in its group is recoverable even if all
  // other buckets fail" case: decode from k parity columns + m-1 known
  // zeros.
  const uint32_t m = 4, k = 1;
  GroupCoder<TypeParam> coder(m, k);
  Bytes value = BytesFromString("lonely record");
  std::vector<const Bytes*> ptrs = {nullptr, &value, nullptr, nullptr};
  std::vector<Bytes> parity = coder.Encode(ptrs);

  std::vector<std::pair<size_t, Bytes>> available = {
      {0, {}}, {2, {}}, {3, {}}, {4, parity[0]}};
  auto decoded = coder.DecodeData(available, {1});
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0], PadTo(value, (*decoded)[0].size()));
}

TEST(GroupCoderTest65536, PadsOddLengthsToWholeSymbols) {
  GroupCoder<GF65536> coder(2, 1);
  Bytes odd = {0xAB, 0xCD, 0xEF};  // 3 bytes -> padded to 4.
  std::vector<const Bytes*> ptrs = {&odd, nullptr};
  std::vector<Bytes> parity = coder.Encode(ptrs);
  ASSERT_EQ(parity[0].size(), 4u);
  EXPECT_EQ(parity[0][0], 0xAB);
  EXPECT_EQ(parity[0][3], 0x00);
}

}  // namespace
}  // namespace lhrs
