// Coordinator soft-state recovery: a restarted coordinator that lost
// everything (file state, allocation table, parity directory) rebuilds it
// all from a node survey — the (A6) idea completed into a full directory
// reconstruction — and heals any buckets that died while it was out.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lhrs/lhrs_file.h"

namespace lhrs {
namespace {

LhrsFile::Options Opts(uint32_t m = 4, uint32_t k = 2) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = 8;
  opts.group_size = m;
  opts.policy.base_k = k;
  return opts;
}

std::vector<Key> Populate(LhrsFile& file, int n, uint64_t seed) {
  Rng rng(seed);
  std::set<Key> keys;
  while (keys.size() < static_cast<size_t>(n)) keys.insert(rng.Next64());
  std::vector<Key> out(keys.begin(), keys.end());
  for (Key k : out) {
    EXPECT_TRUE(file.Insert(k, rng.RandomBytes(24)).ok());
  }
  return out;
}

TEST(CoordinatorRestartTest, RebuildsExactFileState) {
  LhrsFile file(Opts());
  std::vector<Key> keys = Populate(file, 200, 71);
  const FileState before = file.coordinator().state();
  ASSERT_GT(before.bucket_count(), 8u);

  ASSERT_TRUE(file.SimulateCoordinatorRestart().ok());
  const FileState after = file.coordinator().state();
  EXPECT_EQ(after.i, before.i);
  EXPECT_EQ(after.n, before.n);
  EXPECT_EQ(file.group_count(),
            (before.bucket_count() + 3) / 4);
  for (Key k : keys) EXPECT_TRUE(file.Search(k).ok());
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

TEST(CoordinatorRestartTest, RebuildsParityDirectory) {
  LhrsFile file(Opts(4, 3));
  Populate(file, 150, 72);
  // Remember the true directory.
  std::vector<std::vector<NodeId>> before;
  for (uint32_t g = 0; g < file.group_count(); ++g) {
    before.push_back(file.rs_coordinator().group_info(g).parity_nodes);
  }
  ASSERT_TRUE(file.SimulateCoordinatorRestart().ok());
  ASSERT_EQ(file.group_count(), before.size());
  for (uint32_t g = 0; g < file.group_count(); ++g) {
    const auto& info = file.rs_coordinator().group_info(g);
    EXPECT_EQ(info.k, 3u);
    EXPECT_EQ(info.parity_nodes, before[g]) << "group " << g;
  }
}

TEST(CoordinatorRestartTest, FileKeepsGrowingAfterRestart) {
  LhrsFile file(Opts());
  std::vector<Key> keys = Populate(file, 120, 73);
  ASSERT_TRUE(file.SimulateCoordinatorRestart().ok());
  Rng rng(74);
  for (int i = 0; i < 300; ++i) {
    const Key k = rng.Next64();
    if (file.Insert(k, rng.RandomBytes(24)).ok()) keys.push_back(k);
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  for (Key k : keys) EXPECT_TRUE(file.Search(k).ok());
}

TEST(CoordinatorRestartTest, HealsBucketsThatDiedDuringTheOutage) {
  // A data bucket AND a parity bucket died while the coordinator was out;
  // the survey finds the holes and the ordinary recovery machinery heals
  // them.
  LhrsFile file(Opts(4, 2));
  std::vector<Key> keys = Populate(file, 150, 75);
  ASSERT_GT(file.bucket_count(), 4u);
  file.CrashDataBucket(2);
  file.CrashParityBucket(0, 1);

  ASSERT_TRUE(file.SimulateCoordinatorRestart().ok());
  EXPECT_EQ(file.rs_coordinator().groups_lost(), 0u);
  EXPECT_GE(file.rs_coordinator().recoveries_completed(), 1u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << got.status();
  }
}

TEST(CoordinatorRestartTest, WholeGroupParityLossRebuiltFromPolicy) {
  // Every parity bucket of group 0 died with the coordinator: k is
  // unknowable from the survey; the policy supplies it and the columns
  // rebuild from the data.
  LhrsFile file(Opts(4, 2));
  std::vector<Key> keys = Populate(file, 150, 76);
  file.CrashParityBucket(0, 0);
  file.CrashParityBucket(0, 1);
  ASSERT_TRUE(file.SimulateCoordinatorRestart().ok());
  EXPECT_EQ(file.rs_coordinator().group_info(0).k, 2u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  for (Key k : keys) EXPECT_TRUE(file.Search(k).ok());
}

TEST(CoordinatorRestartTest, RestartAfterRecoveryIgnoresDecommissionedTwins) {
  // A bucket was recovered to a spare earlier, and its old server came
  // back as a decommissioned spare: the survey must register the live
  // bucket, not the twin.
  LhrsFile file(Opts());
  std::vector<Key> keys = Populate(file, 120, 77);
  const NodeId old_node = file.CrashDataBucket(1);
  file.DetectAndRecover(old_node);
  file.RestoreNode(old_node);  // Decommissioned twin, alive.

  ASSERT_TRUE(file.SimulateCoordinatorRestart().ok());
  EXPECT_NE(file.context().allocation.Lookup(1), old_node);
  for (Key k : keys) EXPECT_TRUE(file.Search(k).ok());
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

}  // namespace
}  // namespace lhrs
