// Randomized scenario fuzzing of the full LH*RS stack: long interleavings
// of inserts, updates, deletes, searches, scans, crashes (within the
// availability budget), recoveries and node restorations — checked against
// a shadow model and the parity invariant after every phase.

#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lhrs/lhrs_file.h"

namespace lhrs {
namespace {

struct FuzzParams {
  uint64_t seed;
  uint32_t m;
  uint32_t k;
  bool enable_merge;
  FieldChoice field = FieldChoice::kGf256;
};

class LhrsFuzzTest : public ::testing::TestWithParam<FuzzParams> {};

void RunFuzzScenario(const FuzzParams& params) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = 8;
  opts.file.enable_merge = params.enable_merge;
  opts.group_size = params.m;
  opts.policy.base_k = params.k;
  opts.field = params.field;
  LhrsFile file(opts);
  Rng rng(params.seed);

  std::map<Key, Bytes> model;  // Shadow of the expected file contents.
  // Nodes currently crashed, per group, so we respect the budget of k
  // simultaneous failures per group.
  std::map<uint32_t, std::vector<NodeId>> crashed_data;     // group -> nodes
  std::map<uint32_t, std::vector<uint32_t>> crashed_parity;  // group -> idx

  auto group_failures = [&](uint32_t g) {
    return crashed_data[g].size() + crashed_parity[g].size();
  };
  auto any_crashed = [&] {
    for (const auto& [g, v] : crashed_data) {
      if (!v.empty()) return true;
    }
    for (const auto& [g, v] : crashed_parity) {
      if (!v.empty()) return true;
    }
    return false;
  };

  for (int step = 0; step < 1200; ++step) {
    const int action = static_cast<int>(rng.Uniform(100));
    if (action < 45) {  // Insert.
      const Key key = rng.Next64();
      const Bytes value = rng.RandomBytes(1 + rng.Uniform(48));
      const Status s = file.Insert(key, value);
      if (model.contains(key)) {
        EXPECT_TRUE(s.IsAlreadyExists());
      } else if (s.ok()) {
        model[key] = value;
      } else {
        ADD_FAILURE() << "insert failed: " << s;
      }
    } else if (action < 60 && !model.empty()) {  // Update.
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      const Bytes value = rng.RandomBytes(1 + rng.Uniform(48));
      ASSERT_TRUE(file.Update(it->first, value).ok()) << "step " << step;
      it->second = value;
    } else if (action < 70 && !model.empty()) {  // Delete.
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(file.Delete(it->first).ok()) << "step " << step;
      model.erase(it);
    } else if (action < 85) {  // Search (hit or miss).
      if (!model.empty() && rng.Flip(0.8)) {
        auto it = model.begin();
        std::advance(it, rng.Uniform(model.size()));
        auto got = file.Search(it->first);
        ASSERT_TRUE(got.ok()) << "step " << step << ": " << got.status();
        EXPECT_EQ(*got, it->second);
      } else {
        Key key = rng.Next64();
        while (model.contains(key)) key = rng.Next64();
        EXPECT_TRUE(file.Search(key).status().IsNotFound());
      }
    } else if (action < 90) {  // Crash within the availability budget.
      const uint32_t groups = static_cast<uint32_t>(file.group_count());
      const uint32_t g = static_cast<uint32_t>(rng.Uniform(groups));
      if (group_failures(g) >= params.k) continue;
      if (rng.Flip(0.6)) {
        const BucketNo first = g * params.m;
        const BucketNo limit =
            std::min<BucketNo>((g + 1) * params.m, file.bucket_count());
        if (first >= limit) continue;
        const BucketNo b =
            first + static_cast<BucketNo>(rng.Uniform(limit - first));
        const NodeId node = file.context().allocation.Lookup(b);
        if (!file.network().available(node)) continue;
        file.CrashDataBucket(b);
        crashed_data[g].push_back(node);
      } else {
        const uint32_t kk = file.rs_coordinator().group_info(g).k;
        const uint32_t j = static_cast<uint32_t>(rng.Uniform(kk));
        const NodeId node =
            file.rs_coordinator().group_info(g).parity_nodes[j];
        if (!file.network().available(node)) continue;
        file.CrashParityBucket(g, j);
        crashed_parity[g].push_back(j);
      }
    } else if (action < 96 && any_crashed()) {  // Detect & recover all.
      for (auto& [g, nodes] : crashed_data) {
        for (NodeId node : nodes) file.DetectAndRecover(node);
        nodes.clear();
      }
      for (auto& [g, idxs] : crashed_parity) {
        if (!idxs.empty()) {
          file.rs_coordinator().RecoverGroup(g);
          file.network().RunUntilIdle();
          idxs.clear();
        }
      }
      ASSERT_EQ(file.rs_coordinator().groups_lost(), 0u) << "step " << step;
    } else if (!any_crashed()) {  // Scan, only when everything is up.
      auto scan = file.Scan();
      ASSERT_TRUE(scan.ok()) << "step " << step << ": " << scan.status();
      ASSERT_EQ(scan->size(), model.size()) << "step " << step;
      for (const auto& rec : *scan) {
        auto it = model.find(rec.key);
        ASSERT_TRUE(it != model.end());
        EXPECT_EQ(rec.value, it->second);
      }
    }
  }

  // Heal everything and do the full end-state audit.
  for (auto& [g, nodes] : crashed_data) {
    for (NodeId node : nodes) file.DetectAndRecover(node);
  }
  for (auto& [g, idxs] : crashed_parity) {
    if (!idxs.empty()) {
      file.rs_coordinator().RecoverGroup(g);
      file.network().RunUntilIdle();
    }
  }
  ASSERT_EQ(file.rs_coordinator().groups_lost(), 0u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok()) << "end-state parity";
  for (const auto& [key, value] : model) {
    auto got = file.Search(key);
    ASSERT_TRUE(got.ok()) << "key " << key << ": " << got.status();
    EXPECT_EQ(*got, value);
  }
  auto scan = file.Scan();
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), model.size());
}

TEST_P(LhrsFuzzTest, LongRandomScenario) { RunFuzzScenario(GetParam()); }

// CI smoke entry point: one extra scenario whose seed comes from the
// LHRS_FUZZ_SEED environment variable — randomized per CI run but printed
// to the log, so any failure replays locally with
// `LHRS_FUZZ_SEED=<seed> ./lhrs_fuzz_test`. Skipped when unset.
TEST(LhrsFuzzEnvTest, EnvSeededScenario) {
  const char* env = std::getenv("LHRS_FUZZ_SEED");
  if (env == nullptr || *env == '\0') {
    GTEST_SKIP() << "LHRS_FUZZ_SEED not set";
  }
  FuzzParams params{};
  params.seed = std::strtoull(env, nullptr, 10);
  // The shape parameters derive from the seed so the one variable pins the
  // whole scenario.
  Rng shape(params.seed);
  const uint32_t ms[] = {2, 4, 4, 8};
  params.m = ms[shape.Uniform(4)];
  params.k = 1 + static_cast<uint32_t>(shape.Uniform(3));
  params.enable_merge = shape.Flip(0.5);
  std::cout << "LHRS_FUZZ_SEED=" << params.seed << " (m=" << params.m
            << " k=" << params.k << " merge=" << params.enable_merge << ")"
            << std::endl;
  RunFuzzScenario(params);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, LhrsFuzzTest,
    ::testing::Values(FuzzParams{1, 4, 1, false}, FuzzParams{2, 4, 2, false},
                      FuzzParams{3, 2, 2, false}, FuzzParams{4, 8, 2, false},
                      FuzzParams{5, 4, 3, false}, FuzzParams{6, 4, 1, true},
                      FuzzParams{7, 4, 2, true}, FuzzParams{8, 3, 2, true},
                      FuzzParams{9, 1, 1, false},
                      FuzzParams{10, 16, 3, false},
                      FuzzParams{11, 4, 2, false, FieldChoice::kGf65536},
                      FuzzParams{12, 4, 2, true, FieldChoice::kGf65536}),
    [](const ::testing::TestParamInfo<FuzzParams>& info) {
      return "seed" + std::to_string(info.param.seed) + "_m" +
             std::to_string(info.param.m) + "_k" +
             std::to_string(info.param.k) +
             (info.param.enable_merge ? "_merge" : "") +
             (info.param.field == FieldChoice::kGf65536 ? "_gf16" : "");
    });

}  // namespace
}  // namespace lhrs
