// Tests for the discrete-event multicomputer simulator.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/message.h"
#include "net/network.h"
#include "net/node.h"
#include "net/stats.h"

namespace lhrs {
namespace {

constexpr int kTestMsgKind = 90;

struct TestMsg : MessageBody {
  int payload = 0;
  size_t size = 16;

  int kind() const override { return kTestMsgKind; }
  size_t ByteSize() const override { return size; }
};

/// Records everything it receives; optionally echoes back.
class EchoNode : public Node {
 public:
  explicit EchoNode(bool echo) : echo_(echo) {}

  void HandleMessage(const Message& msg) override {
    received.push_back(static_cast<const TestMsg&>(*msg.body).payload);
    receive_times.push_back(network()->now());
    if (echo_) {
      auto reply = std::make_unique<TestMsg>();
      reply->payload = -received.back();
      Send(msg.from, std::move(reply));
    }
  }

  void HandleDeliveryFailure(const Message& msg) override {
    failures.push_back(static_cast<const TestMsg&>(*msg.body).payload);
    failure_times.push_back(network()->now());
  }

  std::vector<int> received;
  std::vector<SimTime> receive_times;
  std::vector<int> failures;
  std::vector<SimTime> failure_times;

 private:
  bool echo_;
};

TEST(NetworkTest, DeliversInSendOrder) {
  Network net;
  auto* a = new EchoNode(false);
  auto* b = new EchoNode(false);
  const NodeId ida = net.AddNode(std::unique_ptr<Node>(a));
  const NodeId idb = net.AddNode(std::unique_ptr<Node>(b));
  for (int i = 0; i < 5; ++i) {
    auto msg = std::make_unique<TestMsg>();
    msg->payload = i;
    net.Send(ida, idb, std::move(msg));
  }
  net.RunUntilIdle();
  EXPECT_EQ(b->received, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(net.stats().total_messages(), 5u);
}

TEST(NetworkTest, EchoRoundTripAdvancesClock) {
  Network net;
  auto* a = new EchoNode(false);
  auto* b = new EchoNode(true);
  const NodeId ida = net.AddNode(std::unique_ptr<Node>(a));
  const NodeId idb = net.AddNode(std::unique_ptr<Node>(b));
  auto msg = std::make_unique<TestMsg>();
  msg->payload = 42;
  net.Send(ida, idb, std::move(msg));
  net.RunUntilIdle();
  ASSERT_EQ(a->received.size(), 1u);
  EXPECT_EQ(a->received[0], -42);
  // Two hops, each 100us base latency plus one 80us KB quantum (the 16-byte
  // payload rounds up to one KiB of serialisation cost).
  EXPECT_EQ(net.now(), 360u);
}

TEST(NetworkTest, LargeMessagesTakeLonger) {
  NetworkConfig cfg;
  cfg.unicast_latency_us = 100;
  cfg.per_kb_us = 80;
  Network net(cfg);
  auto* a = new EchoNode(false);
  auto* b = new EchoNode(false);
  const NodeId ida = net.AddNode(std::unique_ptr<Node>(a));
  const NodeId idb = net.AddNode(std::unique_ptr<Node>(b));
  auto big = std::make_unique<TestMsg>();
  big->payload = 1;
  big->size = 8192;  // 8 KiB -> 8 * 80 extra us.
  net.Send(ida, idb, std::move(big));
  net.RunUntilIdle();
  EXPECT_EQ(b->receive_times[0], 100u + 8 * 80u);
}

TEST(NetworkTest, UnavailableDestinationBouncesAfterTimeout) {
  NetworkConfig cfg;
  cfg.timeout_us = 2000;
  Network net(cfg);
  auto* a = new EchoNode(false);
  auto* b = new EchoNode(false);
  const NodeId ida = net.AddNode(std::unique_ptr<Node>(a));
  const NodeId idb = net.AddNode(std::unique_ptr<Node>(b));
  net.SetAvailable(idb, false);
  auto msg = std::make_unique<TestMsg>();
  msg->payload = 7;
  net.Send(ida, idb, std::move(msg));
  net.RunUntilIdle();
  EXPECT_TRUE(b->received.empty());
  ASSERT_EQ(a->failures.size(), 1u);
  EXPECT_EQ(a->failures[0], 7);
  // Delivery time (100us base + one KB quantum) plus the detection timeout.
  EXPECT_EQ(a->failure_times[0], 180u + 2000u);
  EXPECT_EQ(net.stats().delivery_failures(), 1u);
}

TEST(NetworkTest, RestoredNodeReceivesAgain) {
  Network net;
  auto* a = new EchoNode(false);
  auto* b = new EchoNode(false);
  const NodeId ida = net.AddNode(std::unique_ptr<Node>(a));
  const NodeId idb = net.AddNode(std::unique_ptr<Node>(b));
  net.SetAvailable(idb, false);
  auto m1 = std::make_unique<TestMsg>();
  m1->payload = 1;
  net.Send(ida, idb, std::move(m1));
  net.RunUntilIdle();
  net.SetAvailable(idb, true);
  auto m2 = std::make_unique<TestMsg>();
  m2->payload = 2;
  net.Send(ida, idb, std::move(m2));
  net.RunUntilIdle();
  EXPECT_EQ(b->received, std::vector<int>{2});
}

TEST(NetworkTest, MulticastCountsAsOneMessage) {
  NetworkConfig cfg;
  cfg.multicast_available = true;
  Network net(cfg);
  auto* src = new EchoNode(false);
  const NodeId id_src = net.AddNode(std::unique_ptr<Node>(src));
  std::vector<EchoNode*> sinks;
  std::vector<std::pair<NodeId, std::unique_ptr<MessageBody>>> batch;
  for (int i = 0; i < 8; ++i) {
    auto* sink = new EchoNode(false);
    const NodeId id = net.AddNode(std::unique_ptr<Node>(sink));
    sinks.push_back(sink);
    auto msg = std::make_unique<TestMsg>();
    msg->payload = i;
    batch.emplace_back(id, std::move(msg));
  }
  net.Multicast(id_src, std::move(batch));
  net.RunUntilIdle();
  EXPECT_EQ(net.stats().total_messages(), 1u);   // Paper-style accounting.
  EXPECT_EQ(net.stats().deliveries(), 8u);       // Physical deliveries.
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(sinks[i]->received.size(), 1u);
    EXPECT_EQ(sinks[i]->received[0], i);
  }
}

TEST(NetworkTest, WithoutMulticastServiceEachCopyCounts) {
  NetworkConfig cfg;
  cfg.multicast_available = false;
  Network net(cfg);
  auto* src = new EchoNode(false);
  const NodeId id_src = net.AddNode(std::unique_ptr<Node>(src));
  std::vector<std::pair<NodeId, std::unique_ptr<MessageBody>>> batch;
  for (int i = 0; i < 4; ++i) {
    const NodeId id = net.AddNode(std::make_unique<EchoNode>(false));
    auto msg = std::make_unique<TestMsg>();
    batch.emplace_back(id, std::move(msg));
  }
  net.Multicast(id_src, std::move(batch));
  net.RunUntilIdle();
  EXPECT_EQ(net.stats().total_messages(), 4u);
}

TEST(NetworkTest, StatsPerKindAndRange) {
  RegisterMessageKindName(kTestMsgKind, "test.Msg");
  Network net;
  const NodeId a = net.AddNode(std::make_unique<EchoNode>(false));
  const NodeId b = net.AddNode(std::make_unique<EchoNode>(false));
  for (int i = 0; i < 3; ++i) {
    net.Send(a, b, std::make_unique<TestMsg>());
  }
  net.RunUntilIdle();
  EXPECT_EQ(net.stats().ForKind(kTestMsgKind).messages, 3u);
  EXPECT_EQ(net.stats().ForKind(kTestMsgKind).bytes, 48u);
  EXPECT_EQ(net.stats().ForKindRange(0, 100).messages, 3u);
  EXPECT_EQ(net.stats().ForKindRange(100, 200).messages, 0u);
  EXPECT_NE(net.stats().ToString().find("test.Msg"), std::string::npos);
}

TEST(NetworkTest, InFlightMessageLostByCrash) {
  // Regression: a message already queued towards a node that crashes
  // before its delivery time is lost by the crash — even when the node is
  // restored before the delivery event comes up. Previously only the
  // availability flag at delivery time was consulted, so a fast restore
  // would resurrect in-flight messages.
  Network net;
  auto* a = new EchoNode(false);
  auto* b = new EchoNode(false);
  const NodeId ida = net.AddNode(std::unique_ptr<Node>(a));
  const NodeId idb = net.AddNode(std::unique_ptr<Node>(b));
  auto msg = std::make_unique<TestMsg>();
  msg->payload = 11;
  net.Send(ida, idb, std::move(msg));  // Delivery due at t=180.
  net.SetAvailable(idb, false);        // Crash at t=0: the message dies.
  net.SetAvailable(idb, true);         // Restored long before t=180.
  net.RunUntilIdle();
  EXPECT_TRUE(b->received.empty());
  ASSERT_EQ(a->failures.size(), 1u);
  EXPECT_EQ(a->failures[0], 11);
  // A fresh message to the restored node flows normally again.
  auto msg2 = std::make_unique<TestMsg>();
  msg2->payload = 12;
  net.Send(ida, idb, std::move(msg2));
  net.RunUntilIdle();
  EXPECT_EQ(b->received, std::vector<int>{12});
}

class TimerNode : public Node {
 public:
  void HandleMessage(const Message& msg) override { (void)msg; }
  void HandleTimer(uint64_t timer_id) override {
    fired.push_back(timer_id);
    fire_times.push_back(network()->now());
  }
  std::vector<uint64_t> fired;
  std::vector<SimTime> fire_times;
};

TEST(NetworkTest, TimersFireInOrderAtTheirDeadlines) {
  Network net;
  auto* t = new TimerNode();
  const NodeId id = net.AddNode(std::unique_ptr<Node>(t));
  net.ScheduleTimer(id, 500, 2);
  net.ScheduleTimer(id, 100, 1);
  net.RunUntilIdle();
  EXPECT_EQ(t->fired, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(t->fire_times, (std::vector<SimTime>{100, 500}));
  EXPECT_EQ(net.now(), 500u);
}

TEST(NetworkTest, TimerToUnavailableNodeIsDropped) {
  Network net;
  auto* t = new TimerNode();
  const NodeId id = net.AddNode(std::unique_ptr<Node>(t));
  const NodeId other = net.AddNode(std::make_unique<TimerNode>());
  net.ScheduleTimer(id, 100, 1);
  net.ScheduleTimer(other, 200, 9);  // Keeps the loop running past 100.
  net.SetAvailable(id, false);
  net.RunUntilIdle();
  EXPECT_TRUE(t->fired.empty());
}

TEST(NetworkTest, NonWakeTimerNeedsRunUntil) {
  // A wake=false timer must not keep RunUntilIdle alive (the chaos engine
  // schedules its fault script that way), but RunUntil plays it out.
  Network net;
  auto* t = new TimerNode();
  const NodeId id = net.AddNode(std::unique_ptr<Node>(t));
  net.ScheduleTimer(id, 1000, 7, /*wake=*/false);
  net.RunUntilIdle();
  EXPECT_TRUE(t->fired.empty());
  EXPECT_EQ(net.now(), 0u);  // Idle file: time did not fast-forward.
  net.RunUntil(2000);
  EXPECT_EQ(t->fired, std::vector<uint64_t>{7});
  EXPECT_EQ(net.now(), 2000u);
}

/// Scripted per-call injector for hook-level tests.
class ListInjector : public FaultInjector {
 public:
  FaultActions OnMessage(const Message& msg, SimTime now) override {
    (void)msg;
    (void)now;
    if (next_ >= script.size()) return {};
    return script[next_++];
  }
  std::vector<FaultActions> script;

 private:
  size_t next_ = 0;
};

TEST(NetworkTest, InjectedDropBouncesToSender) {
  Network net;
  auto* a = new EchoNode(false);
  auto* b = new EchoNode(false);
  const NodeId ida = net.AddNode(std::unique_ptr<Node>(a));
  const NodeId idb = net.AddNode(std::unique_ptr<Node>(b));
  ListInjector injector;
  injector.script.push_back({.drop = true});
  net.SetFaultInjector(&injector);
  EXPECT_TRUE(net.fault_injection_active());
  auto msg = std::make_unique<TestMsg>();
  msg->payload = 3;
  net.Send(ida, idb, std::move(msg));
  net.RunUntilIdle();
  EXPECT_TRUE(b->received.empty());
  ASSERT_EQ(a->failures.size(), 1u);
  EXPECT_EQ(a->failures[0], 3);
  // Indistinguishable from a crashed destination: same bounce timing.
  EXPECT_EQ(a->failure_times[0], 180u + 2000u);
  net.SetFaultInjector(nullptr);
  EXPECT_FALSE(net.fault_injection_active());
}

TEST(NetworkTest, InjectedDuplicateDeliversTwiceWithSameId) {
  class IdRecorder : public Node {
   public:
    void HandleMessage(const Message& msg) override {
      ids.push_back(msg.id);
    }
    std::vector<uint64_t> ids;
  };
  Network net;
  auto* a = new EchoNode(false);
  auto* b = new IdRecorder();
  const NodeId ida = net.AddNode(std::unique_ptr<Node>(a));
  const NodeId idb = net.AddNode(std::unique_ptr<Node>(b));
  ListInjector injector;
  injector.script.push_back({.duplicates = 1});
  net.SetFaultInjector(&injector);
  net.Send(ida, idb, std::make_unique<TestMsg>());
  net.RunUntilIdle();
  ASSERT_EQ(b->ids.size(), 2u);
  EXPECT_EQ(b->ids[0], b->ids[1]);  // Receiver-side dedup keys off the id.
  net.SetFaultInjector(nullptr);
}

TEST(NetworkTest, InjectedDelayAndSlowdownStackOnLatency) {
  Network net;
  auto* a = new EchoNode(false);
  auto* b = new EchoNode(false);
  const NodeId ida = net.AddNode(std::unique_ptr<Node>(a));
  const NodeId idb = net.AddNode(std::unique_ptr<Node>(b));
  ListInjector injector;
  injector.script.push_back({.extra_delay_us = 1000, .latency_factor = 2.0});
  net.SetFaultInjector(&injector);
  net.Send(ida, idb, std::make_unique<TestMsg>());
  net.RunUntilIdle();
  // Base 180us doubled, plus 1000us extra delay.
  ASSERT_EQ(b->receive_times.size(), 1u);
  EXPECT_EQ(b->receive_times[0], 2 * 180u + 1000u);
  net.SetFaultInjector(nullptr);
}

TEST(NetworkTest, StepProcessesExactlyOneEvent) {
  Network net;
  auto* a = new EchoNode(false);
  auto* b = new EchoNode(false);
  const NodeId ida = net.AddNode(std::unique_ptr<Node>(a));
  const NodeId idb = net.AddNode(std::unique_ptr<Node>(b));
  for (int i = 0; i < 3; ++i) {
    auto msg = std::make_unique<TestMsg>();
    msg->payload = i;
    net.Send(ida, idb, std::move(msg));
  }
  for (size_t expect = 1; expect <= 3; ++expect) {
    EXPECT_TRUE(net.Step());
    EXPECT_EQ(b->received.size(), expect);
  }
  EXPECT_FALSE(net.Step());  // Idle: nothing left to process.
  EXPECT_EQ(b->received, (std::vector<int>{0, 1, 2}));
}

TEST(NetworkTest, StepSequenceMatchesRunUntilIdle) {
  // N x Step() must pop the identical event sequence RunUntilIdle does —
  // the property that makes open-loop runs trace-identical to closed-loop
  // ones. Drive two identical topologies, one per mode, and compare.
  auto drive = [](bool stepped, std::vector<int>& received,
                  std::vector<SimTime>& times, SimTime& end) {
    Network net;
    auto* a = new EchoNode(false);
    auto* b = new EchoNode(true);
    const NodeId ida = net.AddNode(std::unique_ptr<Node>(a));
    const NodeId idb = net.AddNode(std::unique_ptr<Node>(b));
    for (int i = 1; i <= 4; ++i) {
      auto msg = std::make_unique<TestMsg>();
      msg->payload = i;
      msg->size = static_cast<size_t>(512 * i);
      net.Send(ida, idb, std::move(msg));
    }
    if (stepped) {
      while (net.Step()) {
      }
    } else {
      net.RunUntilIdle();
    }
    received = b->received;
    received.insert(received.end(), a->received.begin(), a->received.end());
    times = b->receive_times;
    times.insert(times.end(), a->receive_times.begin(),
                 a->receive_times.end());
    end = net.now();
  };
  std::vector<int> run_received, step_received;
  std::vector<SimTime> run_times, step_times;
  SimTime run_end = 0, step_end = 0;
  drive(false, run_received, run_times, run_end);
  drive(true, step_received, step_times, step_end);
  EXPECT_EQ(step_received, run_received);
  EXPECT_EQ(step_times, run_times);
  EXPECT_EQ(step_end, run_end);
}

TEST(NetworkTest, RunUntilPredicateStopsMidDrain) {
  Network net;
  auto* a = new EchoNode(false);
  auto* b = new EchoNode(false);
  const NodeId ida = net.AddNode(std::unique_ptr<Node>(a));
  const NodeId idb = net.AddNode(std::unique_ptr<Node>(b));
  for (int i = 0; i < 5; ++i) {
    auto msg = std::make_unique<TestMsg>();
    msg->payload = i;
    net.Send(ida, idb, std::move(msg));
  }
  net.RunUntil([&] { return b->received.size() >= 2; });
  EXPECT_EQ(b->received.size(), 2u);  // Stopped exactly at the predicate.
  net.RunUntilIdle();                 // The rest is still deliverable.
  EXPECT_EQ(b->received.size(), 5u);
}

TEST(NetworkTest, NonWakeTimerSurvivesStepBoundaries) {
  // A wake=false timer (the chaos engine's fault script) must neither be
  // popped by Step() on an otherwise idle file nor be lost by stepping —
  // the same contract NonWakeTimerNeedsRunUntil pins for RunUntilIdle.
  Network net;
  auto* t = new TimerNode();
  auto* a = new EchoNode(false);
  const NodeId idt = net.AddNode(std::unique_ptr<Node>(t));
  const NodeId ida = net.AddNode(std::unique_ptr<Node>(a));
  net.ScheduleTimer(idt, 1000, 7, /*wake=*/false);
  net.Send(idt, ida, std::make_unique<TestMsg>());
  EXPECT_TRUE(net.Step());   // Delivers the message (t=180).
  EXPECT_FALSE(net.Step());  // The non-wake timer alone does not wake.
  EXPECT_TRUE(t->fired.empty());
  net.RunUntil(2000);  // Fast-forward plays the timer out.
  EXPECT_EQ(t->fired, std::vector<uint64_t>{7});
  EXPECT_EQ(net.now(), 2000u);
}

TEST(NetworkTest, CrashEpochBetweenStepsBouncesInFlightMessage) {
  // A crash/restore epoch bump between two Step() calls must kill the
  // messages then in flight, exactly as it does inside a RunUntilIdle
  // drain — open-loop drivers crash nodes between steps all the time.
  Network net;
  auto* a = new EchoNode(false);
  auto* b = new EchoNode(false);
  const NodeId ida = net.AddNode(std::unique_ptr<Node>(a));
  const NodeId idb = net.AddNode(std::unique_ptr<Node>(b));
  auto m1 = std::make_unique<TestMsg>();
  m1->payload = 21;
  net.Send(ida, idb, std::move(m1));  // Delivery due at t=180.
  net.SetAvailable(idb, false);       // Crash between steps...
  net.SetAvailable(idb, true);        // ...and bounce back immediately.
  while (net.Step()) {
  }
  EXPECT_TRUE(b->received.empty());
  ASSERT_EQ(a->failures.size(), 1u);
  EXPECT_EQ(a->failures[0], 21);
  EXPECT_EQ(a->failure_times[0], 180u + 2000u);
  // The restored node is reachable again in subsequent steps.
  auto m2 = std::make_unique<TestMsg>();
  m2->payload = 22;
  net.Send(ida, idb, std::move(m2));
  while (net.Step()) {
  }
  EXPECT_EQ(b->received, std::vector<int>{22});
}

TEST(NetworkTest, NodesAddedDuringRunReceiveMessages) {
  // Models split-time server allocation: a node created by a handler can
  // be messaged immediately.
  class SpawnerNode : public Node {
   public:
    void HandleMessage(const Message& msg) override {
      auto* child = new EchoNode(false);
      child_id = network()->AddNode(std::unique_ptr<Node>(child));
      child_ptr = child;
      auto fwd = std::make_unique<TestMsg>();
      fwd->payload = static_cast<const TestMsg&>(*msg.body).payload;
      Send(child_id, std::move(fwd));
    }
    NodeId child_id = kInvalidNode;
    EchoNode* child_ptr = nullptr;
  };
  Network net;
  auto* spawner = new SpawnerNode();
  const NodeId a = net.AddNode(std::make_unique<EchoNode>(false));
  const NodeId s = net.AddNode(std::unique_ptr<Node>(spawner));
  auto msg = std::make_unique<TestMsg>();
  msg->payload = 5;
  net.Send(a, s, std::move(msg));
  net.RunUntilIdle();
  ASSERT_NE(spawner->child_ptr, nullptr);
  EXPECT_EQ(spawner->child_ptr->received, std::vector<int>{5});
}

}  // namespace
}  // namespace lhrs
