// In-process cluster tests: the full coordinator + servers + clients
// drill running as threads of one process, each member with its own
// ClusterRuntime talking over real loopback sockets — the same code paths
// as examples/cluster, but assertable.
//
// Covers the graceful-shutdown contract (drain, complete telemetry
// report, Goodbye) and the chaos-hardening contract: with a lossy shim
// dropping and duplicating UDP datagrams underneath, the client retry
// policy and the DuplicateFilters above still yield a zero-failure drill.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "lhrs/messages.h"
#include "lhstar/messages.h"
#include "transport/cluster.h"
#include "transport/wire.h"

namespace lhrs::transport {
namespace {

std::string ReadFileToString(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// True when `s` is one complete JSON object: balanced braces/brackets
/// outside strings and nothing but whitespace after the closing brace.
/// (Not a validating parser — it is exactly the truncation detector the
/// graceful-shutdown contract needs.)
bool IsCompleteJsonObject(const std::string& s) {
  size_t i = 0;
  while (i < s.size() && isspace(static_cast<unsigned char>(s[i]))) ++i;
  if (i == s.size() || s[i] != '{') return false;
  int depth = 0;
  bool in_string = false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
      if (depth == 0) break;
    }
  }
  if (depth != 0 || i == s.size()) return false;
  for (++i; i < s.size(); ++i) {
    if (!isspace(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

/// Extracts the integer value of `"key": N` from a report, -1 if absent.
int64_t JsonIntValue(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return -1;
  return atoll(json.c_str() + pos + needle.size());
}

ClusterLayout MakeLayout() {
  ClusterLayout layout;  // 3 servers + 2 clients, as in examples/cluster.
  layout.file.initial_buckets = 4;
  layout.file.bucket_capacity = 32;
  layout.group_size = 4;
  layout.base_k = 1;
  return layout;
}

/// Reserves an ephemeral control port (open, read, close; the coordinator
/// rebinds it a moment later — members retry their connects).
uint16_t ReserveControlPort() {
  ControlListener probe;
  EXPECT_TRUE(probe.Open(0).ok());
  const uint16_t port = probe.port();
  probe.Close();
  return port;
}

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pre-register every global registry single-threaded: the member
    // threads' own registration calls then find everything in place (the
    // kind-name map is not synchronized).
    RegisterLhStarMessageNames();
    RegisterLhrsMessageNames();
    RegisterAllWireCodecs();
    report_dir_ = ::testing::TempDir() + "cluster_" +
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name();
    (void)mkdir(report_dir_.c_str(), 0755);
  }

  ClusterMemberOptions MemberOptions(const ClusterLayout& layout, int rank,
                                     uint16_t port) {
    ClusterMemberOptions options;
    options.layout = layout;
    options.control_port = port;
    options.deadline_ms = 60'000;
    options.report_path =
        report_dir_ + "/member_rank" + std::to_string(rank) + ".json";
    return options;
  }

  /// Runs the whole drill in-process; returns the coordinator (for result
  /// inspection) with every member exit code in `codes`.
  std::unique_ptr<ClusterCoordinator> RunDrill(
      const ClusterLayout& layout, std::vector<int>& codes,
      uint32_t loss_drop_every = 0, uint32_t loss_dup_every = 0) {
    const uint16_t port = ReserveControlPort();
    const uint32_t total = layout.total_ranks();
    codes.assign(total, -1);

    ClusterCoordinator::Options coord_options;
    static_cast<ClusterMemberOptions&>(coord_options) =
        MemberOptions(layout, 0, port);
    coord_options.crash_bucket = 1;
    coord_options.loss_drop_every = loss_drop_every;
    coord_options.loss_dup_every = loss_dup_every;
    auto coordinator = std::make_unique<ClusterCoordinator>(coord_options);

    std::vector<std::thread> threads;
    threads.emplace_back(
        [&, c = coordinator.get()] { codes[0] = c->Run(); });
    for (uint32_t s = 0; s < layout.server_ranks; ++s) {
      const int rank = 1 + static_cast<int>(s);
      threads.emplace_back([&, rank] {
        auto options = MemberOptions(layout, rank, port);
        options.loss_drop_every = loss_drop_every;
        options.loss_dup_every = loss_dup_every;
        ClusterServer server(options, rank);
        codes[rank] = server.Run();
      });
    }
    for (uint32_t c = 0; c < layout.client_ranks; ++c) {
      const int rank = 1 + static_cast<int>(layout.server_ranks + c);
      threads.emplace_back([&, rank] {
        auto options = MemberOptions(layout, rank, port);
        options.loss_drop_every = loss_drop_every;
        options.loss_dup_every = loss_dup_every;
        ClusterClient client(options, rank, /*keys_per_session=*/120);
        codes[rank] = client.Run();
      });
    }
    for (std::thread& t : threads) t.join();
    return coordinator;
  }

  void ExpectCleanDrill(const ClusterCoordinator& coordinator,
                        const std::vector<int>& codes,
                        const ClusterLayout& layout) {
    for (size_t rank = 0; rank < codes.size(); ++rank) {
      EXPECT_EQ(codes[rank], 0) << "rank " << rank << " exited non-zero";
    }
    // Both workload phases finished on every client with zero failures.
    ASSERT_EQ(coordinator.results().size(), 2 * layout.client_ranks);
    for (const auto& [key, result] : coordinator.results()) {
      EXPECT_TRUE(result.ok) << "phase " << key.first << " rank "
                             << key.second;
      EXPECT_EQ(result.failures, 0u);
      EXPECT_GT(result.ops, 0u);
    }
  }

  std::string report_dir_;
};

TEST_F(ClusterTest, DrillRunsEndToEndInProcess) {
  const ClusterLayout layout = MakeLayout();
  std::vector<int> codes;
  auto coordinator = RunDrill(layout, codes);
  ExpectCleanDrill(*coordinator, codes, layout);

  // Graceful-shutdown contract: every member flushed a complete,
  // untruncated telemetry report before its Goodbye.
  for (uint32_t rank = 0; rank < layout.total_ranks(); ++rank) {
    const std::string path =
        report_dir_ + "/member_rank" + std::to_string(rank) + ".json";
    const std::string json = ReadFileToString(path);
    ASSERT_FALSE(json.empty()) << path;
    EXPECT_TRUE(IsCompleteJsonObject(json)) << path << " is truncated";
    EXPECT_NE(json.find("\"clean_shutdown\""), std::string::npos);
    if (rank != 0) {
      EXPECT_NE(json.find("transport.udp_datagrams_sent"),
                std::string::npos);
    }
  }
}

TEST_F(ClusterTest, DrillSurvivesLossyTransport) {
  // Every member's transport drops every 7th and duplicates every 5th
  // outgoing data datagram. The reliability stack (ack + bounded
  // retransmit below, ClientRetryPolicy + DuplicateFilter above) must
  // absorb all of it: same zero-failure drill as the clean run.
  const ClusterLayout layout = MakeLayout();
  std::vector<int> codes;
  auto coordinator =
      RunDrill(layout, codes, /*loss_drop_every=*/7, /*loss_dup_every=*/5);
  ExpectCleanDrill(*coordinator, codes, layout);

  // Prove the shim actually injected faults: the transports retransmitted
  // dropped frames and suppressed duplicated ones.
  int64_t retransmits = 0;
  int64_t dup_suppressed = 0;
  for (uint32_t rank = 0; rank < layout.total_ranks(); ++rank) {
    const std::string json = ReadFileToString(
        report_dir_ + "/member_rank" + std::to_string(rank) + ".json");
    retransmits += std::max<int64_t>(
        0, JsonIntValue(json, "transport.retransmits"));
    dup_suppressed += std::max<int64_t>(
        0, JsonIntValue(json, "transport.dup_suppressed"));
  }
  EXPECT_GT(retransmits, 0);
  EXPECT_GT(dup_suppressed, 0);
}

TEST_F(ClusterTest, ServerStopRequestDrainsAndWritesCompleteReport) {
  // A lone server against a test-driven control plane: after the
  // handshake, RequestStop (the SIGTERM hook) must drain, write a
  // complete report, send Goodbye and exit 0 — without ever seeing a
  // coordinator Stop.
  const ClusterLayout layout = MakeLayout();
  ControlListener listener;
  ASSERT_TRUE(listener.Open(0).ok());

  auto options = MemberOptions(layout, 1, listener.port());
  options.deadline_ms = 20'000;
  ClusterServer server(options, /*rank=*/1);
  int code = -1;
  std::thread runner([&] { code = server.Run(); });

  // Accept the server's control connection and collect its Hello.
  std::optional<ControlConn> conn;
  while (!conn.has_value()) {
    conn = listener.Accept();
    if (!conn.has_value()) usleep(5'000);
  }
  std::optional<CtrlMsg> hello;
  while (!hello.has_value() || hello->type != CtrlType::kHello) {
    hello = conn->Poll();
    if (!hello.has_value()) usleep(5'000);
  }
  EXPECT_EQ(hello->rank, 1u);

  // Welcome it with a full endpoint table (idle drill: nothing ever
  // routes to the other ranks, so the server's own address stands in).
  CtrlMsg welcome;
  welcome.type = CtrlType::kWelcome;
  welcome.endpoints.assign(layout.total_ranks(), hello->endpoint);
  conn->SendMsg(welcome);

  std::optional<CtrlMsg> ready;
  while (!ready.has_value() || ready->type != CtrlType::kReady) {
    conn->Flush();
    ready = conn->Poll();
    if (!ready.has_value()) usleep(5'000);
  }

  server.RequestStop();
  runner.join();
  EXPECT_EQ(code, 0);

  // The Goodbye arrives only after the report hit the disk.
  std::optional<CtrlMsg> bye;
  for (int i = 0; i < 100 && !bye.has_value(); ++i) {
    bye = conn->Poll();
    if (!bye.has_value()) usleep(5'000);
  }
  ASSERT_TRUE(bye.has_value());
  EXPECT_EQ(static_cast<uint32_t>(bye->type),
            static_cast<uint32_t>(CtrlType::kGoodbye));

  const std::string json = ReadFileToString(options.report_path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(IsCompleteJsonObject(json)) << "report truncated";
  EXPECT_NE(json.find("\"cluster_server\""), std::string::npos);
  EXPECT_NE(json.find("\"clean_shutdown\":\"true\""), std::string::npos)
      << json.substr(0, 200);
}

}  // namespace
}  // namespace lhrs::transport
