// Tests for the availability models, including Monte-Carlo
// cross-validation of every closed form.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/availability_model.h"
#include "analysis/cost_model.h"
#include "common/rng.h"

namespace lhrs {
namespace {

TEST(AvailabilityModelTest, PlainMatchesPaperNumbers) {
  // Paper: p = 0.99, M = 100 -> P ~ 0.37; M = 1000 -> ~ 4e-5.
  EXPECT_NEAR(PlainAvailability(100, 0.99), 0.366, 0.005);
  EXPECT_LT(PlainAvailability(1000, 0.99), 1e-4);
  EXPECT_DOUBLE_EQ(PlainAvailability(0, 0.99), 1.0);
}

TEST(AvailabilityModelTest, AtMostFailuresBasics) {
  EXPECT_DOUBLE_EQ(AtMostFailures(3, 3, 0.5), 1.0);
  EXPECT_NEAR(AtMostFailures(2, 1, 0.5), 0.75, 1e-12);
  EXPECT_NEAR(AtMostFailures(1, 0, 0.9), 0.9, 1e-12);
  // Monotone in tolerated failures.
  for (uint32_t t = 0; t < 5; ++t) {
    EXPECT_LE(AtMostFailures(6, t, 0.8), AtMostFailures(6, t + 1, 0.8));
  }
}

TEST(AvailabilityModelTest, LhrsBeatsPlainAndRisesWithK) {
  const double p = 0.99;
  for (uint32_t m : {4u, 8u}) {
    double prev = PlainAvailability(128, p);
    for (uint32_t k = 1; k <= 3; ++k) {
      const double a = LhrsAvailability(128, m, k, p);
      EXPECT_GT(a, prev) << "m=" << m << " k=" << k;
      prev = a;
    }
    EXPECT_GT(prev, 0.999);
  }
}

TEST(AvailabilityModelTest, LhrsHandlesPartialLastGroup) {
  // 10 buckets, m = 4: groups of 4, 4, 2.
  const double p = 0.95;
  const double expected = AtMostFailures(5, 1, p) * AtMostFailures(5, 1, p) *
                          AtMostFailures(3, 1, p);
  EXPECT_NEAR(LhrsAvailability(10, 4, 1, p), expected, 1e-12);
}

TEST(AvailabilityModelTest, ScalableKeepsAvailabilityFlat) {
  // Fixed k = 1 decays with M; scalable k (growing each doubling) holds.
  const double p = 0.99;
  auto scalable_k = [](uint32_t group) {
    if (group < 4) return 1u;
    if (group < 32) return 2u;
    return 3u;
  };
  const double fixed_small = LhrsAvailability(32, 4, 1, p);
  const double fixed_large = LhrsAvailability(1024, 4, 1, p);
  const double scal_large = LhrsScalableAvailability(1024, 4, scalable_k, p);
  EXPECT_LT(fixed_large, fixed_small);
  EXPECT_GT(scal_large, fixed_large);
  EXPECT_GT(scal_large, 0.99) << "scalable availability should stay high";
}

TEST(AvailabilityModelTest, MonteCarloMatchesPlain) {
  Rng rng(1);
  const double mc = MonteCarloAvailability(
      100, 0.99, 50000, rng, [](const std::vector<bool>& up) {
        for (bool u : up) {
          if (!u) return false;
        }
        return true;
      });
  EXPECT_NEAR(mc, PlainAvailability(100, 0.99), 0.01);
}

TEST(AvailabilityModelTest, MonteCarloMatchesLhrs) {
  const uint32_t data = 32, m = 4, k = 2;
  const double p = 0.95;
  Rng rng(2);
  // Node layout: per group, m data then k parity.
  const uint32_t groups = data / m;
  const double mc = MonteCarloAvailability(
      groups * (m + k), p, 50000, rng, [&](const std::vector<bool>& up) {
        for (uint32_t g = 0; g < groups; ++g) {
          uint32_t failures = 0;
          for (uint32_t i = 0; i < m + k; ++i) {
            if (!up[g * (m + k) + i]) ++failures;
          }
          if (failures > k) return false;
        }
        return true;
      });
  EXPECT_NEAR(mc, LhrsAvailability(data, m, k, p), 0.01);
}

TEST(AvailabilityModelTest, MonteCarloMatchesMirror) {
  Rng rng(3);
  const uint32_t buckets = 50;
  const double p = 0.95;
  const double mc = MonteCarloAvailability(
      2 * buckets, p, 50000, rng, [&](const std::vector<bool>& up) {
        for (uint32_t b = 0; b < buckets; ++b) {
          if (!up[2 * b] && !up[2 * b + 1]) return false;
        }
        return true;
      });
  EXPECT_NEAR(mc, MirrorAvailability(buckets, p), 0.01);
}

TEST(AvailabilityModelTest, MonteCarloMatchesLhg) {
  Rng rng(4);
  const uint32_t data = 30, k = 3, parity = 10;
  const double p = 0.97;
  // Layout: data buckets then parity buckets.
  const double mc = MonteCarloAvailability(
      data + parity, p, 50000, rng, [&](const std::vector<bool>& up) {
        uint32_t data_failures = 0;
        for (uint32_t g = 0; g < data; g += k) {
          uint32_t group_failures = 0;
          for (uint32_t i = g; i < std::min(g + k, data); ++i) {
            if (!up[i]) {
              ++group_failures;
              ++data_failures;
            }
          }
          if (group_failures > 1) return false;
        }
        bool parity_failure = false;
        for (uint32_t i = data; i < data + parity; ++i) {
          if (!up[i]) parity_failure = true;
        }
        return !(parity_failure && data_failures > 0);
      });
  EXPECT_NEAR(mc, LhgAvailability(data, k, parity, p), 0.01);
}

TEST(AvailabilityModelTest, MonteCarloMatchesLhs) {
  Rng rng(5);
  const uint32_t buckets = 16, k = 4;
  const double p = 0.95;
  const double mc = MonteCarloAvailability(
      (k + 1) * buckets, p, 50000, rng, [&](const std::vector<bool>& up) {
        for (uint32_t b = 0; b < buckets; ++b) {
          uint32_t failures = 0;
          for (uint32_t f = 0; f <= k; ++f) {
            if (!up[f * buckets + b]) ++failures;
          }
          if (failures > 1) return false;
        }
        return true;
      });
  EXPECT_NEAR(mc, LhsAvailability(buckets, k, p), 0.01);
}

TEST(AvailabilityModelTest, SchemeOrderingAtScale) {
  // At p = 0.99 and a sizeable file: k=2 LH*RS > mirroring > 1-available
  // schemes > plain.
  const double p = 0.99;
  const uint32_t data = 256;
  const double plain = PlainAvailability(data, p);
  const double lhg = LhgAvailability(data, 4, data / 4, p);
  const double lhrs1 = LhrsAvailability(data, 4, 1, p);
  const double mirror = MirrorAvailability(data, p);
  const double lhrs2 = LhrsAvailability(data, 4, 2, p);
  EXPECT_GT(lhg, plain);
  EXPECT_GT(lhrs1, lhg);
  EXPECT_GT(mirror, lhrs1);  // Pairs beat groups-of-5 for 1 failure.
  EXPECT_GT(lhrs2, mirror);
}

TEST(CostModelTest, RecordRecoveryScaling) {
  // LH*RS degraded reads are O(m); LH*g's grow linearly with the parity
  // file — the headline F4 contrast.
  EXPECT_EQ(CostModel::LhrsRecordRecovery(4),
            CostModel::LhrsRecordRecovery(4));
  EXPECT_LT(CostModel::LhrsRecordRecovery(4),
            CostModel::LhgRecordRecovery(16, 4));
  EXPECT_GT(CostModel::LhgRecordRecovery(64, 4),
            2 * CostModel::LhgRecordRecovery(16, 4));
}

}  // namespace
}  // namespace lhrs
