// Cluster mode: an LH*RS file spread across real processes, talking over
// real loopback sockets (UDP for requests and parity deltas, TCP for
// recovery bulk) instead of the discrete-event simulator.
//
// One launcher process forks the whole topology: a coordinator, N bucket
// servers and M workload clients. The coordinator drives the drill —
// a mixed insert/search/update/delete phase (growing the file through
// splits), a scripted server-side bucket crash with Reed-Solomon recovery
// over the wire, and a verification phase that reads every surviving key
// back, including the records that lived on the crashed bucket.
//
// Build & run:   cmake -B build && cmake --build build
//                ./build/examples/cluster
//
// Useful flags:  --servers=3 --clients=2 --keys=120 --verbose
//                --code=rs | --code=lrc2 | --code=rs+prog (parity scheme)
//                --reports=/tmp/lhrs-cluster   (per-member RunReport JSON)
//
// Each role can also be launched by hand for debugging:
//                ./build/examples/cluster --role=coordinator --port=7001
//                ./build/examples/cluster --role=server --rank=1 --port=7001
//                ./build/examples/cluster --role=client --rank=4 --port=7001

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "transport/cluster.h"

namespace {

using lhrs::transport::ClusterClient;
using lhrs::transport::ClusterCoordinator;
using lhrs::transport::ClusterLayout;
using lhrs::transport::ClusterMemberOptions;
using lhrs::transport::ClusterServer;
using lhrs::transport::ControlListener;

struct Args {
  std::string role = "launch";
  int rank = -1;
  uint16_t port = 0;
  uint32_t servers = 3;
  uint32_t clients = 2;
  uint32_t keys = 120;
  uint32_t sessions = 1;
  int crash_bucket = 1;
  uint64_t deadline_ms = 60'000;
  std::string reports;
  std::string code = "rs";  ///< Parity scheme: rs, lrcR, either "+prog".
  bool verbose = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const size_t n = strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--role=")) {
      args.role = v;
    } else if (const char* v = value("--rank=")) {
      args.rank = atoi(v);
    } else if (const char* v = value("--port=")) {
      args.port = static_cast<uint16_t>(atoi(v));
    } else if (const char* v = value("--servers=")) {
      args.servers = static_cast<uint32_t>(atoi(v));
    } else if (const char* v = value("--clients=")) {
      args.clients = static_cast<uint32_t>(atoi(v));
    } else if (const char* v = value("--keys=")) {
      args.keys = static_cast<uint32_t>(atoi(v));
    } else if (const char* v = value("--sessions=")) {
      args.sessions = static_cast<uint32_t>(atoi(v));
    } else if (const char* v = value("--crash-bucket=")) {
      args.crash_bucket = atoi(v);
    } else if (const char* v = value("--deadline-ms=")) {
      args.deadline_ms = static_cast<uint64_t>(atoll(v));
    } else if (const char* v = value("--reports=")) {
      args.reports = v;
    } else if (const char* v = value("--code=")) {
      args.code = v;
    } else if (arg == "--verbose") {
      args.verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      exit(2);
    }
  }
  return args;
}

ClusterLayout MakeLayout(const Args& args) {
  ClusterLayout layout;
  layout.server_ranks = args.servers;
  layout.client_ranks = args.clients;
  layout.sessions_per_client = args.sessions;
  // Small buckets so the phase-1 inserts overflow and force splits over
  // the wire; group_size buckets per RS group with one parity column.
  layout.file.initial_buckets = 4;
  layout.file.bucket_capacity = 32;
  layout.group_size = 4;
  layout.base_k = 1;
  auto code = lhrs::parity::CodeSpec::Parse(args.code);
  if (!code.ok()) {
    std::fprintf(stderr, "bad --code=%s: %s\n", args.code.c_str(),
                 code.status().ToString().c_str());
    exit(2);
  }
  layout.code = *code;
  if (layout.code.kind == lhrs::parity::CodeKind::kLrc) {
    // An LRC needs at least one parity column per local group.
    const uint32_t locals =
        (layout.group_size + layout.code.locality - 1) / layout.code.locality;
    layout.base_k = std::max(layout.base_k, locals);
  }
  return layout;
}

ClusterMemberOptions MakeMemberOptions(const Args& args, int rank) {
  ClusterMemberOptions options;
  options.layout = MakeLayout(args);
  options.control_port = args.port;
  options.deadline_ms = args.deadline_ms;
  options.verbose = args.verbose;
  if (!args.reports.empty()) {
    options.report_path =
        args.reports + "/member_rank" + std::to_string(rank) + ".json";
  }
  return options;
}

// Installed in every member process so the launcher (or an operator) can
// SIGTERM it into a graceful drain: finish in-flight operations, write the
// telemetry report, exit.
std::atomic<bool> g_sigterm{false};
void HandleSigterm(int) { g_sigterm.store(true); }

void InstallSigterm() {
  struct sigaction sa = {};
  sa.sa_handler = HandleSigterm;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

template <typename Member>
int RunMember(Member& member) {
  InstallSigterm();
  // The member polls its own stop flag; bridge the signal into it from a
  // watcher "thread" — the run loops already poll stop_requested_, so the
  // cheapest bridge is checking the flag inside the loop via RequestStop.
  // Member loops call back frequently enough that polling here suffices.
  std::atomic<bool> done{false};
  std::thread watcher([&] {
    while (!done.load()) {
      if (g_sigterm.load()) {
        member.RequestStop();
        return;
      }
      usleep(10'000);
    }
  });
  const int code = member.Run();
  done.store(true);
  watcher.join();
  return code;
}

int RunCoordinator(const Args& args) {
  ClusterCoordinator::Options options;
  static_cast<ClusterMemberOptions&>(options) = MakeMemberOptions(args, 0);
  options.crash_bucket = args.crash_bucket;
  if (!args.reports.empty()) {
    options.report_path = args.reports + "/coordinator.json";
  }
  ClusterCoordinator coordinator(options);
  return RunMember(coordinator);
}

int RunServer(const Args& args) {
  ClusterServer server(MakeMemberOptions(args, args.rank), args.rank);
  return RunMember(server);
}

int RunClient(const Args& args) {
  ClusterClient client(MakeMemberOptions(args, args.rank), args.rank,
                       args.keys);
  return RunMember(client);
}

// The launcher: opens the control port first (so children can connect
// immediately), forks one child per role, then babysits them — any child
// failing, every other child gets SIGTERM'd and the drill fails.
int RunLauncher(const Args& args) {
  const ClusterLayout layout = MakeLayout(args);

  // Reserve a control port by opening the listener here, reading its
  // ephemeral port, and closing it again before the coordinator child
  // rebinds it. The tiny race is acceptable for an example launcher.
  uint16_t port = args.port;
  if (port == 0) {
    ControlListener probe;
    if (!probe.Open(0).ok()) {
      std::fprintf(stderr, "cannot allocate control port\n");
      return 2;
    }
    port = probe.port();
    probe.Close();
  }

  std::printf("LH*RS cluster: coordinator + %u servers + %u clients on "
              "127.0.0.1:%u (UDP data / TCP bulk / TCP control)\n",
              layout.server_ranks, layout.client_ranks, port);
  std::fflush(nullptr);  // Children inherit the stdio buffers.

  struct Child {
    pid_t pid;
    std::string name;
  };
  std::vector<Child> children;
  const auto spawn = [&](const std::string& role, int rank) {
    const pid_t pid = fork();
    if (pid == 0) {
      Args child = args;
      child.role = role;
      child.rank = rank;
      child.port = port;
      if (role == "coordinator") _exit(RunCoordinator(child));
      if (role == "server") _exit(RunServer(child));
      _exit(RunClient(child));
    }
    children.push_back({pid, role + "/" + std::to_string(rank)});
  };

  spawn("coordinator", 0);
  for (uint32_t s = 0; s < layout.server_ranks; ++s) {
    spawn("server", 1 + static_cast<int>(s));
  }
  for (uint32_t c = 0; c < layout.client_ranks; ++c) {
    spawn("client",
          1 + static_cast<int>(layout.server_ranks) + static_cast<int>(c));
  }

  // Babysit: collect exits; on any non-zero exit, terminate the rest.
  bool failed = false;
  size_t exited = 0;
  while (exited < children.size()) {
    int status = 0;
    const pid_t pid = waitpid(-1, &status, 0);
    if (pid < 0) break;
    ++exited;
    const int code = WIFEXITED(status)   ? WEXITSTATUS(status)
                     : WIFSIGNALED(status) ? 128 + WTERMSIG(status)
                                           : 1;
    for (const Child& child : children) {
      if (child.pid == pid) {
        std::printf("  %-14s exited with code %d\n", child.name.c_str(),
                    code);
        break;
      }
    }
    if (code != 0 && !failed) {
      failed = true;
      for (const Child& child : children) {
        if (child.pid != pid) kill(child.pid, SIGTERM);
      }
    }
  }

  std::printf(failed ? "cluster drill FAILED\n"
                     : "cluster drill succeeded: mixed workload, splits, a "
                       "bucket crash and its Reed-Solomon recovery — all "
                       "over real sockets\n");
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  if (args.role == "launch") return RunLauncher(args);
  if (args.role == "coordinator") return RunCoordinator(args);
  if (args.role == "server") return RunServer(args);
  if (args.role == "client") return RunClient(args);
  std::fprintf(stderr, "unknown role: %s\n", args.role.c_str());
  return 2;
}
