// Scenario: choosing a high-availability scheme for a new deployment.
//
// Runs the same workload against every scheme in this repository — LH*RS
// and the three classical baselines (LH*g record grouping, LH*m mirroring,
// LH*s striping) — and prints the trade-off table an operator would use:
// storage overhead, write cost, read cost, degraded-read behaviour, and
// the modelled availability at fleet scale.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/availability_model.h"
#include "baselines/lhg/lhg_file.h"
#include "baselines/lhm/lhm_file.h"
#include "baselines/lhs/lhs_file.h"
#include "common/rng.h"
#include "lhrs/lhrs_file.h"

namespace {

using namespace lhrs;

constexpr int kRecords = 800;
constexpr size_t kValueBytes = 96;

struct Row {
  std::string scheme;
  double overhead = 0;
  double write_msgs = 0;
  double read_msgs = 0;
  bool degraded_read_ok = false;
  double availability_1k = 0;  // Modelled at 1000 buckets, p = 0.99.
};

template <typename File>
Row Exercise(const std::string& name, File& file, Network& net,
             double availability) {
  Row row;
  row.scheme = name;
  Rng rng(99);
  std::vector<Key> keys;
  for (int i = 0; i < kRecords; ++i) {
    const Key k = rng.Next64();
    if (file.Insert(k, rng.RandomBytes(kValueBytes)).ok()) keys.push_back(k);
  }
  uint64_t before = net.stats().total_messages();
  for (int i = 0; i < 200; ++i) {
    (void)file.Insert(rng.Next64(), rng.RandomBytes(kValueBytes));
  }
  row.write_msgs = (net.stats().total_messages() - before) / 200.0;
  before = net.stats().total_messages();
  for (int i = 0; i < 200; ++i) (void)file.Search(keys[i]);
  row.read_msgs = (net.stats().total_messages() - before) / 200.0;
  row.overhead = file.GetStorageStats().ParityOverhead();
  row.availability_1k = availability;
  return row;
}

void Print(const Row& row) {
  std::printf("| %-14s | %7.1f%% | %6.2f | %6.2f | %-12s | %8.4f |\n",
              row.scheme.c_str(), 100.0 * row.overhead, row.write_msgs,
              row.read_msgs, row.degraded_read_ok ? "yes" : "no",
              row.availability_1k);
}

}  // namespace

int main() {
  const double p = 0.99;
  std::printf("workload: %d x %zu B records + 200 writes + 200 reads per "
              "scheme\n\n",
              kRecords, kValueBytes);
  std::printf("| %-14s | %8s | %6s | %6s | %-12s | %8s |\n", "scheme",
              "overhead", "write", "read", "degraded-rd", "P(M=1000)");
  std::printf("|----------------|----------|--------|--------|--------------|----------|\n");

  {
    LhrsFile::Options o;
    o.file.bucket_capacity = 32;
    o.group_size = 4;
    o.policy.base_k = 2;
    LhrsFile f(o);
    Row row = Exercise("LH*RS m=4 k=2", f, f.network(),
                       LhrsAvailability(1000, 4, 2, p));
    // Degraded read check.
    f.CrashDataBucket(2);
    row.degraded_read_ok = true;
    for (Key k = 0; k < 50; ++k) {
      auto got = f.Search(k);
      if (!got.ok() && !got.status().IsNotFound()) row.degraded_read_ok = false;
    }
    Print(row);
  }
  {
    lhg::LhgFile::Options o;
    o.file.bucket_capacity = 32;
    o.group_size = 4;
    lhg::LhgFile f(o);
    Row row = Exercise("LH*g k=4", f, f.network(),
                       LhgAvailability(1000, 4, 250, p));
    f.CrashDataBucket(2);
    row.degraded_read_ok = true;
    for (Key k = 0; k < 50; ++k) {
      auto got = f.Search(k);
      if (!got.ok() && !got.status().IsNotFound()) row.degraded_read_ok = false;
    }
    Print(row);
  }
  {
    lhm::LhmFile::Options o;
    o.file.bucket_capacity = 32;
    lhm::LhmFile f(o);
    Row row =
        Exercise("LH*m mirror", f, f.network(), MirrorAvailability(1000, p));
    f.CrashPrimaryBucket(1);
    row.degraded_read_ok = true;
    for (Key k = 0; k < 50; ++k) {
      auto got = f.Search(k);
      if (!got.ok() && !got.status().IsNotFound()) row.degraded_read_ok = false;
    }
    Print(row);
  }
  {
    lhs::LhsFile::Options o;
    o.file.bucket_capacity = 32;
    o.stripe_count = 4;
    lhs::LhsFile f(o);
    Row row = Exercise("LH*s k=4", f, f.network(),
                       LhsAvailability(250, 4, p));
    f.CrashStripeBucketOf(1, 12345);
    row.degraded_read_ok = true;
    for (Key k = 0; k < 20; ++k) {
      auto got = f.Search(k);
      if (!got.ok() && !got.status().IsNotFound()) row.degraded_read_ok = false;
    }
    Print(row);
  }

  std::printf(
      "\nreading the table: LH*RS matches the cheapest reads (mirroring "
      "aside, striping pays k reads), keeps overhead ~k/m, and is the only "
      "scheme whose availability level is tunable per group.\n");
  return 0;
}
