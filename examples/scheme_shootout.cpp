// Scenario: choosing a high-availability scheme for a new deployment.
//
// Runs the same workload against every scheme in this repository — LH*RS
// and the three classical baselines (LH*g record grouping, LH*m mirroring,
// LH*s striping) — and prints the trade-off table an operator would use:
// storage overhead, write cost, read cost, degraded-read behaviour, and
// the modelled availability at fleet scale.
//
// Every scheme is exercised through the scheme-agnostic sdds::SddsFile
// facade, so the workload is written exactly once; only construction and
// the crash trigger are per-scheme. With --pipelined the measured phase
// runs open-loop through the session layer (4 clients, window 4) instead
// of the closed-loop synchronous API — message costs stay put while the
// simulated wall-clock collapses.

#include <cstdio>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/availability_model.h"
#include "baselines/lhg/lhg_file.h"
#include "baselines/lhm/lhm_file.h"
#include "baselines/lhs/lhs_file.h"
#include "common/rng.h"
#include "lhrs/lhrs_file.h"
#include "sdds/session.h"

namespace {

using namespace lhrs;

constexpr int kRecords = 800;
constexpr size_t kValueBytes = 96;
constexpr int kMeasuredOps = 200;

struct Row {
  std::string scheme;
  double overhead = 0;
  double write_msgs = 0;
  double read_msgs = 0;
  bool degraded_read_ok = false;
  double availability_1k = 0;  // Modelled at 1000 buckets, p = 0.99.
};

/// Runs `ops` through the session layer (4 clients, window 4) and returns
/// messages per op.
double RunPipelined(sdds::SddsFile& file, const std::vector<sdds::SddsOp>& ops) {
  const uint64_t before = file.network().stats().total_messages();
  sdds::PipelinedRunner runner(file, sdds::RunnerOptions{4, 4, 0});
  size_t next = 0;
  (void)runner.Run([&](size_t) -> std::optional<sdds::SddsOp> {
    if (next >= ops.size()) return std::nullopt;
    return ops[next++];
  });
  return (file.network().stats().total_messages() - before) /
         static_cast<double>(ops.size());
}

/// The shared workload: grow to kRecords, then measure write and read
/// message costs over kMeasuredOps ops each.
Row Exercise(const std::string& name, sdds::SddsFile& file,
             double availability, bool pipelined) {
  Row row;
  row.scheme = name;
  Rng rng(99);
  std::vector<Key> keys;
  for (int i = 0; i < kRecords; ++i) {
    const Key k = rng.Next64();
    if (file.Insert(k, rng.RandomBytes(kValueBytes)).ok()) keys.push_back(k);
  }
  std::vector<sdds::SddsOp> writes, reads;
  for (int i = 0; i < kMeasuredOps; ++i) {
    writes.push_back(sdds::SddsOp{OpType::kInsert, rng.Next64(),
                                  rng.RandomBytes(kValueBytes)});
    reads.push_back(sdds::SddsOp{OpType::kSearch, keys[i], {}});
  }
  if (pipelined) {
    row.write_msgs = RunPipelined(file, writes);
    row.read_msgs = RunPipelined(file, reads);
  } else {
    uint64_t before = file.network().stats().total_messages();
    for (const auto& op : writes) (void)file.Insert(op.key, op.value);
    row.write_msgs = (file.network().stats().total_messages() - before) /
                     static_cast<double>(kMeasuredOps);
    before = file.network().stats().total_messages();
    for (const auto& op : reads) (void)file.Search(op.key);
    row.read_msgs = (file.network().stats().total_messages() - before) /
                    static_cast<double>(kMeasuredOps);
  }
  row.overhead = file.GetStorageStats().ParityOverhead();
  row.availability_1k = availability;
  return row;
}

/// Shared degraded-read check: after the caller crashed a node, the first
/// `count` inserted keys must still be readable (NotFound tolerated only
/// for keys the grow phase dropped).
bool DegradedReadsOk(sdds::SddsFile& file, size_t count) {
  Rng rng(99);  // Same seed as Exercise: replays the inserted keys.
  bool ok = true;
  for (size_t i = 0; i < count; ++i) {
    const Key k = rng.Next64();
    rng.RandomBytes(kValueBytes);  // Keep the stream aligned.
    auto got = file.Search(k);
    if (!got.ok() && !got.status().IsNotFound()) ok = false;
  }
  return ok;
}

void Print(const Row& row) {
  std::printf("| %-14s | %7.1f%% | %6.2f | %6.2f | %-12s | %8.4f |\n",
              row.scheme.c_str(), 100.0 * row.overhead, row.write_msgs,
              row.read_msgs, row.degraded_read_ok ? "yes" : "no",
              row.availability_1k);
}

}  // namespace

int main(int argc, char** argv) {
  bool pipelined = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pipelined") == 0) pipelined = true;
  }
  const double p = 0.99;
  std::printf("workload: %d x %zu B records + %d writes + %d reads per "
              "scheme (%s)\n\n",
              kRecords, kValueBytes, kMeasuredOps, kMeasuredOps,
              pipelined ? "open-loop: 4 clients, window 4"
                        : "closed-loop; rerun with --pipelined");
  std::printf("| %-14s | %8s | %6s | %6s | %-12s | %8s |\n", "scheme",
              "overhead", "write", "read", "degraded-rd", "P(M=1000)");
  std::printf("|----------------|----------|--------|--------|--------------|----------|\n");

  {
    LhrsFile::Options o;
    o.file.bucket_capacity = 32;
    o.group_size = 4;
    o.policy.base_k = 2;
    LhrsFile f(o);
    Row row = Exercise("LH*RS m=4 k=2", f, LhrsAvailability(1000, 4, 2, p),
                       pipelined);
    f.CrashDataBucket(2);
    row.degraded_read_ok = DegradedReadsOk(f, 50);
    Print(row);
  }
  {
    lhg::LhgFile::Options o;
    o.file.bucket_capacity = 32;
    o.group_size = 4;
    lhg::LhgFile f(o);
    Row row = Exercise("LH*g k=4", f, LhgAvailability(1000, 4, 250, p),
                       pipelined);
    f.CrashDataBucket(2);
    row.degraded_read_ok = DegradedReadsOk(f, 50);
    Print(row);
  }
  {
    lhm::LhmFile::Options o;
    o.file.bucket_capacity = 32;
    lhm::LhmFile f(o);
    Row row = Exercise("LH*m mirror", f, MirrorAvailability(1000, p),
                       pipelined);
    f.CrashPrimaryBucket(1);
    row.degraded_read_ok = DegradedReadsOk(f, 50);
    Print(row);
  }
  {
    lhs::LhsFile::Options o;
    o.file.bucket_capacity = 32;
    o.stripe_count = 4;
    lhs::LhsFile f(o);
    Row row = Exercise("LH*s k=4", f, LhsAvailability(250, 4, p), pipelined);
    f.CrashStripeBucketOf(1, 12345);
    row.degraded_read_ok = DegradedReadsOk(f, 20);
    Print(row);
  }

  std::printf(
      "\nreading the table: LH*RS matches the cheapest reads (mirroring "
      "aside, striping pays k reads), keeps overhead ~k/m, and is the only "
      "scheme whose availability level is tunable per group.\n");
  return 0;
}
