// Scenario: a device-telemetry store with *scalable availability* and a
// scripted failure drill, observed through the telemetry subsystem.
//
// The store begins small with 1-availability; as the fleet (and the file)
// grows past configured thresholds, newly created bucket groups get higher
// availability levels automatically — the paper's answer to "reliability
// must not decay as the file scales". The drill then walks the failure
// envelope: k failures in one group (survivable), a restored node standing
// down as a spare, and finally k+1 failures (loud data loss, never silent).
//
// Telemetry is enabled on the network, so every crash, restore, split and
// recovery phase lands in the event tracer; after drill 1 the example
// replays the recovery timeline from the trace, and on exit it writes
// failure_drill.trace.json, loadable in chrome://tracing.

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "lhrs/lhrs_file.h"
#include "telemetry/telemetry.h"

namespace {

/// Prints the structural recovery/crash events of `group` as a timeline.
void PrintRecoveryTimeline(const lhrs::telemetry::Tracer& tracer,
                           int32_t group) {
  using lhrs::telemetry::RecoveryPhase;
  using lhrs::telemetry::TraceEventType;
  std::printf("  recovery timeline of group %d (from the trace):\n", group);
  for (const auto& ev : tracer.Events()) {
    const char* name = TraceEventTypeName(ev.type);
    switch (ev.type) {
      case TraceEventType::kCrash:
        std::printf("    %8llu us  %-20s node %d\n",
                    static_cast<unsigned long long>(ev.time_us), name,
                    ev.node);
        break;
      case TraceEventType::kRecoveryBegin:
      case TraceEventType::kRecoveryEnd:
        if (ev.group != group) break;
        std::printf("    %8llu us  %-20s group %d\n",
                    static_cast<unsigned long long>(ev.time_us), name,
                    ev.group);
        break;
      case TraceEventType::kRecoveryPhaseBegin:
      case TraceEventType::kRecoveryPhaseEnd:
        if (ev.group != group) break;
        std::printf("    %8llu us  %-20s phase %s\n",
                    static_cast<unsigned long long>(ev.time_us), name,
                    RecoveryPhaseName(
                        static_cast<RecoveryPhase>(ev.detail)));
        break;
      default:
        break;
    }
  }
}

bool WriteTrace(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace

int main() {
  using namespace lhrs;

  LhrsFile::Options options;
  options.file.bucket_capacity = 24;
  options.group_size = 4;
  options.policy.base_k = 1;
  options.policy.scale_thresholds = {16, 48};  // k: 1 -> 2 -> 3.
  LhrsFile store(options);
  // Structural events only: the ingest phase below is tens of thousands of
  // messages and would cycle per-message events out of the trace ring.
  telemetry::TelemetryConfig tcfg;
  tcfg.trace_messages = false;
  telemetry::Telemetry* tm = store.network().EnableTelemetry(tcfg);
  Rng rng(7);

  // Fleet growth: keep ingesting device readings until the file is large.
  std::vector<Key> devices;
  while (store.bucket_count() < 64) {
    const Key device = rng.Next64();
    if (store.Insert(device, rng.RandomBytes(48)).ok()) {
      devices.push_back(device);
    }
  }
  std::printf("fleet ingested: %zu readings, %u buckets, %zu groups\n",
              devices.size(), store.bucket_count(), store.group_count());
  for (uint32_t g : {0u, static_cast<uint32_t>(store.group_count()) - 1}) {
    std::printf("  group %u availability level k = %u\n", g,
                store.rs_coordinator().group_info(g).k);
  }

  // --- Drill 1: kill k nodes of the newest (k=3) group --------------------
  const uint32_t target = static_cast<uint32_t>(store.group_count()) - 2;
  const uint32_t k = store.rs_coordinator().group_info(target).k;
  std::printf("\ndrill 1: killing %u columns of group %u (k = %u)...\n", k,
              target, k);
  std::vector<NodeId> dead;
  dead.push_back(store.CrashDataBucket(target * 4));
  if (k >= 2) dead.push_back(store.CrashDataBucket(target * 4 + 1));
  if (k >= 3) dead.push_back(store.CrashParityBucket(target, 0));
  store.DetectAndRecover(dead.front());
  std::printf("  recoveries completed: %llu, groups lost: %llu\n",
              static_cast<unsigned long long>(
                  store.rs_coordinator().recoveries_completed()),
              static_cast<unsigned long long>(
                  store.rs_coordinator().groups_lost()));
  if (!store.VerifyParityInvariants().ok()) {
    std::printf("  INVARIANT BROKEN\n");
    return 1;
  }
  std::printf("  all data intact, parity invariant holds\n");
  PrintRecoveryTimeline(tm->tracer(), static_cast<int32_t>(target));
  if (const auto* h =
          tm->metrics().FindHistogram("recovery_latency_us")) {
    std::printf("  recovery latency: count %llu, p50 %llu us, max %llu us\n",
                static_cast<unsigned long long>(h->count()),
                static_cast<unsigned long long>(h->p50()),
                static_cast<unsigned long long>(h->max()));
  }

  // --- Drill 1b: scheduled integrity scrub --------------------------------
  auto scrub = store.Scrub(/*repair=*/true);
  std::printf("\nnightly scrub: %u groups, %llu record groups audited, "
              "%llu mismatches, %u columns repaired\n",
              scrub.groups_scrubbed,
              static_cast<unsigned long long>(scrub.record_groups_checked),
              static_cast<unsigned long long>(
                  scrub.mismatched_parity_records),
              scrub.parity_columns_repaired);

  // --- Drill 2: a crashed node comes back and must stand down -------------
  std::printf("\ndrill 2: restoring the first dead node...\n");
  store.RestoreNode(dead.front());
  const auto* old_node =
      store.network().node_as<DataBucketNode>(dead.front());
  std::printf("  restored node decommissioned (hot spare now): %s\n",
              old_node->decommissioned() ? "yes" : "NO (bug)");

  // --- Drill 3: exceed k in the oldest (k=1) group ------------------------
  std::printf("\ndrill 3: killing 2 buckets of group 0 (k = 1)...\n");
  const NodeId d1 = store.CrashDataBucket(0);
  store.CrashDataBucket(1);
  store.DetectAndRecover(d1);
  std::printf("  groups lost: %llu (expected 1 — loss is loud, not "
              "silent)\n",
              static_cast<unsigned long long>(
                  store.rs_coordinator().groups_lost()));
  int data_loss = 0, ok = 0;
  for (const Key device : devices) {
    auto got = store.Search(device);
    if (got.ok()) {
      ++ok;
    } else if (got.status().IsDataLoss()) {
      ++data_loss;
    }
  }
  std::printf("  reads: %d ok, %d loud kDataLoss, 0 silent losses\n", ok,
              data_loss);

  // --- Export the whole drill as a Chrome trace ---------------------------
  const std::string trace_path = "failure_drill.trace.json";
  if (WriteTrace(trace_path, tm->tracer().ToChromeTrace())) {
    std::printf("\ntrace: %s (%zu events, load in chrome://tracing)\n",
                trace_path.c_str(), tm->tracer().size());
  } else {
    std::printf("\ncould not write %s\n", trace_path.c_str());
  }
  return store.rs_coordinator().groups_lost() == 1 && data_loss > 0 ? 0 : 1;
}
