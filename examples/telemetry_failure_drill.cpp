// Scenario: a device-telemetry store with *scalable availability* and a
// scripted failure drill.
//
// The store begins small with 1-availability; as the fleet (and the file)
// grows past configured thresholds, newly created bucket groups get higher
// availability levels automatically — the paper's answer to "reliability
// must not decay as the file scales". The drill then walks the failure
// envelope: k failures in one group (survivable), a restored node standing
// down as a spare, and finally k+1 failures (loud data loss, never silent).

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "lhrs/lhrs_file.h"

int main() {
  using namespace lhrs;

  LhrsFile::Options options;
  options.file.bucket_capacity = 24;
  options.group_size = 4;
  options.policy.base_k = 1;
  options.policy.scale_thresholds = {16, 48};  // k: 1 -> 2 -> 3.
  LhrsFile store(options);
  Rng rng(7);

  // Fleet growth: keep ingesting device readings until the file is large.
  std::vector<Key> devices;
  while (store.bucket_count() < 64) {
    const Key device = rng.Next64();
    if (store.Insert(device, rng.RandomBytes(48)).ok()) {
      devices.push_back(device);
    }
  }
  std::printf("fleet ingested: %zu readings, %u buckets, %zu groups\n",
              devices.size(), store.bucket_count(), store.group_count());
  for (uint32_t g : {0u, static_cast<uint32_t>(store.group_count()) - 1}) {
    std::printf("  group %u availability level k = %u\n", g,
                store.rs_coordinator().group_info(g).k);
  }

  // --- Drill 1: kill k nodes of the newest (k=3) group --------------------
  const uint32_t target = static_cast<uint32_t>(store.group_count()) - 2;
  const uint32_t k = store.rs_coordinator().group_info(target).k;
  std::printf("\ndrill 1: killing %u columns of group %u (k = %u)...\n", k,
              target, k);
  std::vector<NodeId> dead;
  dead.push_back(store.CrashDataBucket(target * 4));
  if (k >= 2) dead.push_back(store.CrashDataBucket(target * 4 + 1));
  if (k >= 3) dead.push_back(store.CrashParityBucket(target, 0));
  store.DetectAndRecover(dead.front());
  std::printf("  recoveries completed: %llu, groups lost: %llu\n",
              static_cast<unsigned long long>(
                  store.rs_coordinator().recoveries_completed()),
              static_cast<unsigned long long>(
                  store.rs_coordinator().groups_lost()));
  if (!store.VerifyParityInvariants().ok()) {
    std::printf("  INVARIANT BROKEN\n");
    return 1;
  }
  std::printf("  all data intact, parity invariant holds\n");

  // --- Drill 1b: scheduled integrity scrub --------------------------------
  auto scrub = store.Scrub(/*repair=*/true);
  std::printf("\nnightly scrub: %u groups, %llu record groups audited, "
              "%llu mismatches, %u columns repaired\n",
              scrub.groups_scrubbed,
              static_cast<unsigned long long>(scrub.record_groups_checked),
              static_cast<unsigned long long>(
                  scrub.mismatched_parity_records),
              scrub.parity_columns_repaired);

  // --- Drill 2: a crashed node comes back and must stand down -------------
  std::printf("\ndrill 2: restoring the first dead node...\n");
  store.RestoreNode(dead.front());
  const auto* old_node =
      store.network().node_as<DataBucketNode>(dead.front());
  std::printf("  restored node decommissioned (hot spare now): %s\n",
              old_node->decommissioned() ? "yes" : "NO (bug)");

  // --- Drill 3: exceed k in the oldest (k=1) group ------------------------
  std::printf("\ndrill 3: killing 2 buckets of group 0 (k = 1)...\n");
  const NodeId d1 = store.CrashDataBucket(0);
  store.CrashDataBucket(1);
  store.DetectAndRecover(d1);
  std::printf("  groups lost: %llu (expected 1 — loss is loud, not "
              "silent)\n",
              static_cast<unsigned long long>(
                  store.rs_coordinator().groups_lost()));
  int data_loss = 0, ok = 0;
  for (const Key device : devices) {
    auto got = store.Search(device);
    if (got.ok()) {
      ++ok;
    } else if (got.status().IsDataLoss()) {
      ++data_loss;
    }
  }
  std::printf("  reads: %d ok, %d loud kDataLoss, 0 silent losses\n", ok,
              data_loss);
  return store.rs_coordinator().groups_lost() == 1 && data_loss > 0 ? 0 : 1;
}
