// Quickstart: create an LH*RS file, store records, survive a server
// failure, and watch the file recover itself.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "lhrs/lhrs_file.h"

int main() {
  using namespace lhrs;

  // A file with bucket groups of m = 4 data buckets, each protected by
  // k = 2 Reed-Solomon parity buckets: any 2 simultaneous server failures
  // per group are survivable.
  LhrsFile::Options options;
  options.file.bucket_capacity = 16;  // Records per bucket (b).
  options.group_size = 4;             // m
  options.policy.base_k = 2;          // k

  LhrsFile file(options);

  // Store a few hundred records. The file grows by linear-hashing splits;
  // clients keep working with stale images and converge via IAMs.
  std::printf("inserting 500 records...\n");
  for (Key key = 1; key <= 500; ++key) {
    Status s = file.Insert(key, BytesFromString("value-" + std::to_string(key)));
    if (!s.ok()) {
      std::printf("insert %llu failed: %s\n",
                  static_cast<unsigned long long>(key), s.ToString().c_str());
      return 1;
    }
  }
  std::printf("file grew to %u data buckets in %zu groups (+%zu parity "
              "buckets)\n",
              file.bucket_count(), file.group_count(),
              file.GetStorageStats().parity_buckets);

  // Ordinary reads: 2 messages, parity untouched.
  auto value = file.Search(42);
  std::printf("search(42) -> %s\n",
              value.ok() ? std::string(value->begin(), value->end()).c_str()
                         : value.status().ToString().c_str());

  // Crash a server. The next read of that bucket is served in degraded
  // mode via Reed-Solomon record recovery, and the coordinator rebuilds
  // the whole bucket on a hot spare in the background.
  std::printf("\ncrashing the server of bucket 3...\n");
  file.CrashDataBucket(3);
  auto recovered = file.Search(3);  // Key 3 lives in bucket 3.
  std::printf("search(3) during the outage -> %s (served by record "
              "recovery)\n",
              recovered.ok()
                  ? std::string(recovered->begin(), recovered->end()).c_str()
                  : recovered.status().ToString().c_str());
  std::printf("degraded reads served: %llu, bucket recoveries completed: "
              "%llu\n",
              static_cast<unsigned long long>(
                  file.rs_coordinator().degraded_reads_served()),
              static_cast<unsigned long long>(
                  file.rs_coordinator().recoveries_completed()));

  // The parity invariant holds end to end.
  Status invariant = file.VerifyParityInvariants();
  std::printf("\nparity invariant: %s\n", invariant.ToString().c_str());
  std::printf("total messages exchanged: %llu\n",
              static_cast<unsigned long long>(
                  file.network().stats().total_messages()));
  return invariant.ok() ? 0 : 1;
}
