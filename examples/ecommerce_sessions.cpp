// Scenario: a web-shop session store on a multicomputer.
//
// The LH* papers motivate SDDSs with exactly this kind of workload: a RAM
// file serving key lookups orders of magnitude faster than disk, scaling
// across commodity nodes as traffic grows. Sessions are keyed by a 64-bit
// session id; values hold a small serialized cart. The store must keep
// answering during node failures (a dropped session = a lost sale).
//
// The example runs a day of traffic: ramp-up (file scale-out), a flash
// sale (8 storefront clients pipelining cart updates through the session
// layer), a rack failure during the sale (two nodes of one group), and an
// analytics scan at the end.

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "lhrs/lhrs_file.h"
#include "sdds/session.h"

namespace {

lhrs::Bytes MakeCart(lhrs::Rng& rng, bool premium) {
  std::string cart = premium ? "tier=premium;items=" : "tier=basic;items=";
  const int items = 1 + static_cast<int>(rng.Uniform(5));
  for (int i = 0; i < items; ++i) {
    cart += "sku" + std::to_string(rng.Uniform(10000)) + ",";
  }
  return lhrs::BytesFromString(cart);
}

}  // namespace

int main() {
  using namespace lhrs;

  LhrsFile::Options options;
  options.file.bucket_capacity = 32;
  options.group_size = 4;
  options.policy.base_k = 2;  // Survive a dual-node rack incident.
  LhrsFile store(options);
  Rng rng(20260705);

  // --- Morning ramp-up: 3000 sessions created -----------------------------
  std::vector<Key> sessions;
  for (int i = 0; i < 3000; ++i) {
    const Key sid = rng.Next64();
    if (store.Insert(sid, MakeCart(rng, rng.Flip(0.2))).ok()) {
      sessions.push_back(sid);
    }
  }
  std::printf("ramp-up: %zu sessions across %u buckets (%zu groups), load "
              "factor %.2f\n",
              sessions.size(), store.bucket_count(), store.group_count(),
              store.GetStorageStats().load_factor);

  // --- Flash sale: 8 storefront clients pipeline cart updates -------------
  // Open-loop through the session layer: each client keeps 4 updates in
  // flight, refilled the instant one completes. Same per-update message
  // cost as one-at-a-time, a fraction of the simulated wall-clock.
  const uint64_t msgs_before = store.network().stats().total_messages();
  constexpr int kSaleUpdates = 2000;
  int remaining = kSaleUpdates;
  sdds::PipelinedRunner runner(store, sdds::RunnerOptions{8, 4, 0});
  sdds::RunnerReport sale =
      runner.Run([&](size_t) -> std::optional<sdds::SddsOp> {
        if (remaining == 0) return std::nullopt;
        --remaining;
        const Key sid = sessions[rng.Uniform(sessions.size())];
        return sdds::SddsOp{OpType::kUpdate, sid,
                            MakeCart(rng, rng.Flip(0.3))};
      });
  if (sale.failures != 0 || sale.completed != kSaleUpdates) {
    std::printf("update lost!\n");
    return 1;
  }
  std::printf("flash sale: %d cart updates from 8 clients (window 4), "
              "%.2f msgs/update, p95 latency %llu us, %.2f us/update\n",
              kSaleUpdates,
              (store.network().stats().total_messages() - msgs_before) /
                  static_cast<double>(kSaleUpdates),
              static_cast<unsigned long long>(sale.LatencyPercentileUs(95)),
              static_cast<double>(sale.elapsed_us()) / kSaleUpdates);

  // --- Rack incident: two servers of one bucket group go dark -------------
  std::printf("\nrack incident: killing buckets 4 and 5 (same group)...\n");
  store.CrashDataBucket(4);
  store.CrashDataBucket(5);

  // Shoppers keep hitting the store; every session stays readable.
  int checked = 0, served = 0;
  for (const Key sid : sessions) {
    if (checked == 400) break;
    ++checked;
    if (store.Search(sid).ok()) ++served;
  }
  std::printf("during the incident: %d/%d session reads served "
              "(degraded reads: %llu)\n",
              served, checked,
              static_cast<unsigned long long>(
                  store.rs_coordinator().degraded_reads_served()));
  std::printf("background recoveries completed: %llu, groups lost: %llu\n",
              static_cast<unsigned long long>(
                  store.rs_coordinator().recoveries_completed()),
              static_cast<unsigned long long>(
                  store.rs_coordinator().groups_lost()));
  if (served != checked || store.rs_coordinator().groups_lost() != 0) {
    std::printf("LOST SALES — availability goal missed\n");
    return 1;
  }

  // --- Evening analytics: scan for premium carts --------------------------
  ScanPredicate premium;
  premium.contains = BytesFromString("tier=premium");
  auto result = store.Scan(premium);
  if (!result.ok()) {
    std::printf("analytics scan failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nanalytics: %zu premium sessions out of %zu\n",
              result->size(), sessions.size());

  Status invariant = store.VerifyParityInvariants();
  std::printf("parity invariant after the whole day: %s\n",
              invariant.ToString().c_str());
  return invariant.ok() ? 0 : 1;
}
