// Scenario: a scripted chaos drill over an LH*RS file, replayable from a
// single seed.
//
// The drill builds a 2-available store, loads half a workload, then attaches
// a fault plan that crashes a node (restoring it much later), kills a random
// member of bucket group 0, and subjects all traffic to probabilistic drop /
// duplicate / reorder faults — while the rest of the workload is inserted
// through a client hardened with bounded retries, exponential backoff and
// duplicate-reply suppression. Afterwards it recovers every group and audits
// the file: zero lost records, zero duplicates, parity invariant intact.
//
// The headline property: the whole drill is a pure function of the seed.
// The program runs it twice and verifies the telemetry traces — every send,
// delivery, fault injection and recovery phase with its timestamp — are
// byte-identical. Run with `--seed=N` to explore scenarios; every run prints
// its seed, so a CI failure replays locally with the same flag.

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "common/rng.h"
#include "lhrs/lhrs_file.h"
#include "telemetry/telemetry.h"

namespace {

using namespace lhrs;
using chaos::FaultKind;
using chaos::FaultPlan;

struct DrillOutcome {
  bool converged = true;         ///< Every record present exactly once.
  uint64_t faults_injected = 0;  ///< All kinds, from the engine tallies.
  uint64_t per_kind[8] = {};
  uint64_t client_retries = 0;
  uint64_t client_escalations = 0;
  uint64_t duplicates_suppressed = 0;
  std::string failure;     ///< Empty when converged.
  std::string trace_json;  ///< Full telemetry trace (replay comparison).
};

DrillOutcome RunDrill(uint64_t seed, bool verbose) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = 8;
  opts.group_size = 4;
  opts.policy.base_k = 2;
  LhrsFile file(opts);
  file.network().EnableTelemetry();

  ClientRetryPolicy retry;
  retry.enabled = true;
  retry.seed = seed ^ 0x9e3779b97f4a7c15ull;
  file.client(0).SetRetryPolicy(retry);

  // Half the workload lands on a healthy file...
  Rng keygen(61);
  std::set<Key> unique;
  while (unique.size() < 160) unique.insert(keygen.Next64());
  const std::vector<Key> keys(unique.begin(), unique.end());
  size_t i = 0;
  for (; i < keys.size() / 2; ++i) {
    file.Insert(keys[i], BytesFromString("v" + std::to_string(keys[i]))).ok();
  }

  // ...then the faults start.
  const NodeId victim = file.context().allocation.Lookup(2);
  FaultPlan plan;
  plan.seed = seed;
  plan.CrashAt(2000, victim)
      .RestoreAt(400000, victim)
      .CrashGroupAt(5000, /*group=*/0, /*count=*/1)
      .DropMessages(0.03)
      .DuplicateMessages(0.05)
      .ReorderMessages(0.1, /*jitter_us=*/400);
  if (verbose) {
    std::printf("plan (seed %llu):\n%s",
                static_cast<unsigned long long>(seed),
                plan.Describe().c_str());
  }
  chaos::ChaosEngine& engine = file.AttachChaos(std::move(plan));

  std::vector<Key> deferred;
  for (; i < keys.size(); ++i) {
    if (!file.Insert(keys[i], BytesFromString("v" + std::to_string(keys[i])))
             .ok()) {
      // Bounded retries gave up mid-outage — honest, and re-issuable.
      deferred.push_back(keys[i]);
    }
  }
  file.PlayOutChaos();

  DrillOutcome out;
  out.faults_injected = engine.injected_total();
  for (int k = 0; k < 8; ++k) {
    out.per_kind[k] = engine.injected(static_cast<FaultKind>(k));
  }
  file.DetachChaos();
  file.RecoverAll();
  for (Key k : deferred) {
    const Status s =
        file.Insert(k, BytesFromString("v" + std::to_string(k)));
    if (!s.ok() && !s.IsAlreadyExists()) {
      out.converged = false;
      out.failure = "re-insert of " + std::to_string(k) + ": " + s.ToString();
    }
  }

  // Audit: every record present exactly once, parity invariant intact.
  auto scan = file.Scan();
  if (!scan.ok()) {
    out.converged = false;
    out.failure = "scan: " + scan.status().ToString();
    if (std::getenv("CHAOS_DRILL_DEBUG") != nullptr) {
      for (BucketNo b = 0; b < file.bucket_count(); ++b) {
        const NodeId node = file.context().allocation.Lookup(b);
        const auto* db = file.rs_bucket(b);
        std::fprintf(stderr,
                     "bucket %u node=%lld avail=%d records=%zu decomm=%d\n",
                     b, static_cast<long long>(node),
                     file.network().available(node) ? 1 : 0,
                     db != nullptr ? db->record_count() : 0,
                     db != nullptr && db->decommissioned() ? 1 : 0);
      }
    }
  } else {
    std::set<Key> seen;
    for (const WireRecord& rec : *scan) {
      if (!seen.insert(rec.key).second) {
        out.converged = false;
        out.failure = "duplicate record " + std::to_string(rec.key);
      }
    }
    if (seen.size() != keys.size()) {
      out.converged = false;
      out.failure = "lost records: scan holds " +
                    std::to_string(seen.size()) + " of " +
                    std::to_string(keys.size());
    }
  }
  if (const Status s = file.VerifyParityInvariants(); !s.ok()) {
    out.converged = false;
    out.failure = "parity: " + s.ToString();
  }

  out.client_retries = file.client(0).retries();
  out.client_escalations = file.client(0).escalations();
  out.duplicates_suppressed = file.client(0).duplicates_suppressed();
  out.trace_json = file.network().telemetry()->tracer().ToJson();

  if (verbose) {
    std::printf("\nfaults injected: %llu\n",
                static_cast<unsigned long long>(out.faults_injected));
    for (int k = 0; k < 8; ++k) {
      if (out.per_kind[k] == 0) continue;
      std::printf("  %-12s %llu\n",
                  chaos::FaultKindName(static_cast<FaultKind>(k)),
                  static_cast<unsigned long long>(out.per_kind[k]));
    }
    std::printf("client hardening: %llu retries, %llu escalations, "
                "%llu duplicate replies suppressed, %zu deferred inserts\n",
                static_cast<unsigned long long>(out.client_retries),
                static_cast<unsigned long long>(out.client_escalations),
                static_cast<unsigned long long>(out.duplicates_suppressed),
                deferred.size());
    std::printf("audit: %s\n",
                out.converged ? "all records present exactly once, parity OK"
                              : ("FAILED — " + out.failure).c_str());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 42;
  std::string trace_out;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(12);
    } else {
      std::fprintf(stderr, "usage: %s [--seed=N] [--trace-out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  std::printf("chaos drill, seed %llu (replay with --seed=%llu)\n\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed));

  const DrillOutcome first = RunDrill(seed, /*verbose=*/true);

  std::printf("\nreplaying from the same seed...\n");
  const DrillOutcome second = RunDrill(seed, /*verbose=*/false);
  const bool identical = first.trace_json == second.trace_json &&
                         first.faults_injected == second.faults_injected;
  std::printf("replay: %llu faults, trace %s (%zu bytes)\n",
              static_cast<unsigned long long>(second.faults_injected),
              identical ? "byte-identical" : "DIVERGED",
              first.trace_json.size());

  if (!trace_out.empty()) {
    // The trace is the drill's deterministic fingerprint: dumping it lets
    // external tooling diff replays across builds, not just within one run.
    std::FILE* f = std::fopen(trace_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 2;
    }
    std::fwrite(first.trace_json.data(), 1, first.trace_json.size(), f);
    std::fclose(f);
  }

  const bool ok = first.converged && second.converged && identical &&
                  first.faults_injected > 0;
  std::printf("\n%s\n", ok ? "drill passed" : "drill FAILED");
  return ok ? 0 : 1;
}
