// Experiment F5 — scalable availability: the availability level k of newly
// created groups rises as the file grows, keeping whole-file availability
// roughly flat at a storage cost that grows only stepwise.
//
// Runs a real LH*RS file with scale thresholds, reporting per-checkpoint:
// the k of the newest group, measured storage overhead, and the analytic
// availability of the *actual* per-group k layout (read back from the
// coordinator) vs the fixed-k=1 alternative.

#include <cstdio>

#include "analysis/availability_model.h"
#include "bench/bench_util.h"
#include "lhrs/lhrs_file.h"

namespace lhrs::bench {
namespace {

void Run(BenchReport& r) {
  const double p = 0.99;
  r.BeginTable(
      "F5 — uncoordinated scalable availability (m=4, k0=1, thresholds "
      "M>=16 and M>=64)",
      {"buckets", "groups", "newest k", "overhead", "P(scalable)",
       "P(fixed k=1)"});

  LhrsFile::Options opts;
  opts.file.bucket_capacity = 16;
  opts.group_size = 4;
  opts.policy.base_k = 1;
  opts.policy.scale_thresholds = {16, 64};
  LhrsFile file(opts);
  Rng rng(555);

  BucketNo next_checkpoint = 8;
  while (file.bucket_count() < 160) {
    (void)file.Insert(rng.Next64(), rng.RandomBytes(64));
    if (file.bucket_count() < next_checkpoint) continue;
    next_checkpoint *= 2;

    const auto& coord = file.rs_coordinator();
    const uint32_t groups = static_cast<uint32_t>(coord.group_count());
    // Analytic availability with the actual per-group k layout.
    const double scalable = LhrsScalableAvailability(
        file.bucket_count(), 4,
        [&](uint32_t g) { return coord.group_info(g).k; }, p);
    const double fixed = LhrsAvailability(file.bucket_count(), 4, 1, p);
    r.Row({std::to_string(file.bucket_count()), std::to_string(groups),
           std::to_string(coord.group_info(groups - 1).k),
           Fmt(100.0 * file.GetStorageStats().ParityOverhead(), 1) + "%",
           FmtSci(scalable), FmtSci(fixed)});
  }

  LHRS_CHECK(file.VerifyParityInvariants().ok());
  std::puts("");
  std::puts(
      "shape check: newest-group k steps 1->2->3; P(scalable) stays orders "
      "of magnitude above P(fixed) at large M; overhead grows stepwise.");
}

}  // namespace
}  // namespace lhrs::bench

int main(int argc, char** argv) {
  lhrs::bench::BenchReport report("f5_scalable_availability");
  report.report().AddParam("seed", int64_t{555});
  report.report().AddParam("p", 0.99);
  lhrs::bench::Run(report);
  return lhrs::bench::WriteReport(report.report(), argc, argv);
}
