// Experiment T1 — storage overhead of the availability schemes.
//
// Reproduces the paper's storage-cost comparison: LH*RS parity overhead is
// ~k/m (plus key metadata), tunable independently of access cost; LH*g
// ~1/k_g; LH*s ~1/k_s; LH*m a flat 100%. Loads the same record volume into
// every scheme and reports measured parity overhead vs the ideal.

#include <cstdio>

#include "baselines/lhg/lhg_file.h"
#include "baselines/lhm/lhm_file.h"
#include "baselines/lhs/lhs_file.h"
#include "bench/bench_util.h"
#include "lhrs/lhrs_file.h"
#include "store/bucket_store.h"

namespace lhrs::bench {
namespace {

constexpr int kRecords = 2000;
constexpr size_t kValueBytes = 128;
constexpr size_t kCapacity = 40;

void Report(BenchReport& r, const std::string& scheme,
            const std::string& params, const StorageStats& stats,
            double ideal) {
  r.Row({scheme, params, std::to_string(stats.record_count),
         std::to_string(stats.data_buckets),
         std::to_string(stats.parity_buckets),
         Fmt(100.0 * stats.ParityOverhead(), 1) + "%",
         Fmt(100.0 * ideal, 1) + "%", Fmt(stats.load_factor, 2)});
}

void Run(BenchReport& r) {
  r.BeginTable("T1 — storage overhead (2000 records x 128 B)",
               {"scheme", "params", "records", "data bkts", "parity bkts",
                "overhead", "ideal", "load"});

  for (uint32_t m : {2u, 4u, 8u, 16u}) {
    for (uint32_t k : {1u, 2u, 3u}) {
      LhrsFile::Options opts;
      opts.file.bucket_capacity = kCapacity;
      opts.group_size = m;
      opts.policy.base_k = k;
      LhrsFile file(opts);
      Rng rng(1000 + m * 10 + k);
      for (int i = 0; i < kRecords; ++i) {
        (void)file.Insert(rng.Next64(), rng.RandomBytes(kValueBytes));
      }
      Report(r, "LH*RS", "m=" + std::to_string(m) + " k=" + std::to_string(k),
             file.GetStorageStats(), static_cast<double>(k) / m);
    }
  }

  for (uint32_t k : {3u, 5u, 10u}) {
    lhg::LhgFile::Options opts;
    opts.file.bucket_capacity = kCapacity;
    opts.group_size = k;
    lhg::LhgFile file(opts);
    Rng rng(2000 + k);
    for (int i = 0; i < kRecords; ++i) {
      (void)file.Insert(rng.Next64(), rng.RandomBytes(kValueBytes));
    }
    Report(r, "LH*g", "k=" + std::to_string(k), file.GetStorageStats(),
           1.0 / k);
  }

  {
    lhm::LhmFile::Options opts;
    opts.file.bucket_capacity = kCapacity;
    lhm::LhmFile file(opts);
    Rng rng(3000);
    for (int i = 0; i < kRecords; ++i) {
      (void)file.Insert(rng.Next64(), rng.RandomBytes(kValueBytes));
    }
    Report(r, "LH*m", "mirror", file.GetStorageStats(), 1.0);
  }

  for (uint32_t k : {2u, 4u}) {
    lhs::LhsFile::Options opts;
    opts.file.bucket_capacity = kCapacity;
    opts.stripe_count = k;
    lhs::LhsFile file(opts);
    Rng rng(4000 + k);
    for (int i = 0; i < kRecords; ++i) {
      (void)file.Insert(rng.Next64(), rng.RandomBytes(kValueBytes));
    }
    Report(r, "LH*s", "k=" + std::to_string(k), file.GetStorageStats(),
           1.0 / k);
  }
}

/// Measured throughput of the BucketStore engine itself (no network, no
/// parity): the arena's single-ingestion-copy insert path, O(1) handle
/// lookups, overwrite churn with tombstoning, and a full repack.
void RunEngineThroughput(BenchReport& r) {
  constexpr size_t kEngineRecords = 100'000;
  constexpr size_t kEngineValueBytes = 256;
  constexpr uint64_t kEngineBytes = kEngineRecords * kEngineValueBytes;

  r.BeginTable("T1b — BucketStore engine throughput (100k x 256 B)",
               {"operation", "ops", "bytes", "ops/s", "bytes/s"});

  Rng rng(5000);
  std::vector<Bytes> values;
  values.reserve(kEngineRecords);
  for (size_t i = 0; i < kEngineRecords; ++i) {
    values.push_back(rng.RandomBytes(kEngineValueBytes));
  }

  store::BucketStore store;
  WallTimer timer;
  for (size_t i = 0; i < kEngineRecords; ++i) {
    store.Insert(i, values[i]);
  }
  r.ThroughputRow("insert", kEngineRecords, kEngineBytes, timer.Seconds());

  timer.Reset();
  uint64_t found_bytes = 0;
  for (size_t i = 0; i < kEngineRecords; ++i) {
    found_bytes += store.Find(i)->size();
  }
  r.ThroughputRow("find", kEngineRecords, found_bytes, timer.Seconds());

  timer.Reset();
  for (size_t i = 0; i < kEngineRecords; ++i) {
    store.Put(i, BufferView(values[kEngineRecords - 1 - i]));
  }
  r.ThroughputRow("overwrite", kEngineRecords, kEngineBytes, timer.Seconds());

  timer.Reset();
  store.Compact();
  r.ThroughputRow("compact", store.size(), store.payload_bytes(),
                  timer.Seconds());
}

}  // namespace
}  // namespace lhrs::bench

int main(int argc, char** argv) {
  lhrs::bench::BenchReport report("t1_storage");
  report.report().AddParam("records", int64_t{2000});
  report.report().AddParam("value_bytes", int64_t{128});
  lhrs::bench::Run(report);
  lhrs::bench::RunEngineThroughput(report);
  return lhrs::bench::WriteReport(report.report(), argc, argv);
}
