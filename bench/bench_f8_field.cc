// Experiment F8 — symbol-width ablation at the protocol level: the same
// LH*RS workload over GF(2^8) vs GF(2^16) parity. Message counts are
// identical by construction (the field only changes local math and padding
// to whole symbols); what differs is bytes on the wire (±1 byte padding
// per odd-length payload) and the local encode/decode throughput measured
// in bench T3. This bench demonstrates the protocol equivalence and
// reports end-to-end recovery outcomes under both fields.

#include <cstdio>

#include "bench/bench_util.h"
#include "lhrs/lhrs_file.h"

namespace lhrs::bench {
namespace {

struct RunResult {
  uint64_t total_messages = 0;
  uint64_t total_bytes = 0;
  uint64_t parity_bytes = 0;
  uint64_t recovery_messages = 0;
  bool all_recovered = false;
};

RunResult RunWorkload(FieldChoice field) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = 20;
  opts.group_size = 4;
  opts.policy.base_k = 2;
  opts.field = field;
  LhrsFile file(opts);
  Rng rng(31337);
  std::vector<Key> keys;
  for (int i = 0; i < 1000; ++i) {
    const Key k = rng.Next64();
    // Odd lengths stress the GF(2^16) whole-symbol padding.
    if (file.Insert(k, rng.RandomBytes(31 + rng.Uniform(34))).ok()) {
      keys.push_back(k);
    }
  }
  for (int i = 0; i < 300; ++i) {
    (void)file.Update(keys[rng.Uniform(keys.size())],
                      rng.RandomBytes(31 + rng.Uniform(34)));
  }
  RunResult out;
  out.parity_bytes = file.GetStorageStats().parity_bytes;

  const uint64_t before = file.network().stats().total_messages();
  const NodeId d1 = file.CrashDataBucket(0);
  file.CrashDataBucket(1);
  file.DetectAndRecover(d1);
  out.recovery_messages = file.network().stats().total_messages() - before;
  out.all_recovered = file.rs_coordinator().groups_lost() == 0 &&
                      file.VerifyParityInvariants().ok();
  for (Key k : keys) {
    out.all_recovered &= file.Search(k).ok();
  }
  out.total_messages = file.network().stats().total_messages();
  out.total_bytes = file.network().stats().total().bytes;
  return out;
}

void Run(BenchReport& rep) {
  rep.BeginTable(
      "F8 — GF(2^8) vs GF(2^16) at the protocol level (m=4, k=2, dual "
      "failure recovery)",
      {"field", "total msgs", "total KB", "parity KB stored",
       "recovery msgs", "all data recovered"});
  for (FieldChoice field : {FieldChoice::kGf256, FieldChoice::kGf65536}) {
    const RunResult r = RunWorkload(field);
    rep.Row({FieldChoiceName(field), std::to_string(r.total_messages),
             Fmt(r.total_bytes / 1024.0, 1), Fmt(r.parity_bytes / 1024.0, 1),
             std::to_string(r.recovery_messages),
             r.all_recovered ? "yes" : "NO"});
  }
  std::puts("");
  std::puts(
      "shape check: identical message counts and recovery outcome; GF(2^16) "
      "adds <=1 byte of padding per odd-length parity buffer; its win is "
      "local throughput (bench T3), not traffic.");
}

}  // namespace
}  // namespace lhrs::bench

int main(int argc, char** argv) {
  lhrs::bench::BenchReport report("f8_field");
  report.report().AddParam("seed", int64_t{31337});
  lhrs::bench::Run(report);
  return lhrs::bench::WriteReport(report.report(), argc, argv);
}
