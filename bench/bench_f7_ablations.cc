// Experiment F7 — ablations of the design choices DESIGN.md calls out.
//
// F7a  rank reuse on delete/move vs monotone ranks: group density and
//      parity storage under churn.
// F7b  hardware multicast vs unicast fan-out: scan and recovery-scan costs.
// F7c  LH*g vs LH*g1: split-time parity traffic vs recovery locality
//      (the design axis on which LH*RS sits at the far end).

#include <cstdio>

#include "baselines/lhg/lhg_file.h"
#include "bench/bench_util.h"
#include "lhrs/lhrs_file.h"

namespace lhrs::bench {
namespace {

void RankReuseAblation(BenchReport& r) {
  r.BeginTable("F7a — rank reuse vs monotone ranks (m=4, k=1, churn)",
               {"variant", "records", "parity records", "avg group fill",
                "parity overhead"});
  for (bool reuse : {true, false}) {
    LhrsFile::Options opts;
    opts.file.bucket_capacity = 100000;
    opts.file.initial_buckets = 4;
    opts.group_size = 4;
    opts.policy.base_k = 1;
    opts.reuse_ranks = reuse;
    LhrsFile file(opts);
    Rng rng(1001);
    // Churn: insert 2000, then repeatedly delete + insert.
    std::vector<Key> keys;
    for (int i = 0; i < 2000; ++i) {
      const Key k = rng.Next64();
      if (file.Insert(k, rng.RandomBytes(64)).ok()) keys.push_back(k);
    }
    for (int round = 0; round < 4000; ++round) {
      const size_t at = rng.Uniform(keys.size());
      (void)file.Delete(keys[at]);
      const Key k = rng.Next64();
      if (file.Insert(k, rng.RandomBytes(64)).ok()) keys[at] = k;
    }
    size_t parity_records = 0;
    size_t members = 0;
    for (uint32_t g = 0; g < file.group_count(); ++g) {
      const auto* p = file.parity_bucket(g, 0);
      parity_records += p->parity_record_count();
      for (const auto& [rank, rec] : p->parity_records()) {
        for (const auto& key : rec.keys) members += key.has_value() ? 1 : 0;
      }
    }
    const StorageStats stats = file.GetStorageStats();
    r.Row({reuse ? "reuse (paper 4.3)" : "monotone",
           std::to_string(stats.record_count),
           std::to_string(parity_records),
           Fmt(static_cast<double>(members) / parity_records),
           Fmt(100.0 * stats.ParityOverhead(), 1) + "%"});
  }
}

void MulticastAblation(BenchReport& r) {
  std::puts("");
  r.BeginTable("F7b — hardware multicast vs unicast fan-out (scan cost)",
               {"multicast", "buckets", "scan msgs", "degraded-read msgs"});
  for (bool multicast : {true, false}) {
    LhrsFile::Options opts;
    opts.file.bucket_capacity = 12;
    opts.group_size = 4;
    opts.policy.base_k = 1;
    opts.net.multicast_available = multicast;
    opts.auto_recover = false;
    LhrsFile file(opts);
    Rng rng(1002);
    std::vector<Key> keys;
    for (int i = 0; i < 400; ++i) {
      const Key k = rng.Next64();
      if (file.Insert(k, rng.RandomBytes(32)).ok()) keys.push_back(k);
    }
    uint64_t before = file.network().stats().total_messages();
    LHRS_CHECK(file.Scan().ok());
    const uint64_t scan_msgs =
        file.network().stats().total_messages() - before;
    // Degraded read (LH*RS needs no scan, so this stays small either way).
    const FileState& state = file.coordinator().state();
    Key victim_key = 0;
    for (Key k : keys) {
      if (state.Address(k) == 2) {
        victim_key = k;
        break;
      }
    }
    file.CrashDataBucket(2);
    before = file.network().stats().total_messages();
    LHRS_CHECK(file.Search(victim_key).ok());
    const uint64_t degraded_msgs =
        file.network().stats().total_messages() - before;
    r.Row({multicast ? "yes" : "no", std::to_string(file.bucket_count()),
           std::to_string(scan_msgs), std::to_string(degraded_msgs)});
  }
}

void Lhg1Ablation(BenchReport& r) {
  std::puts("");
  r.BeginTable("F7c — LH*g vs LH*g1 (group-key reassignment on split)",
               {"variant", "parity msgs total", "A4 recovery msgs",
                "dual-group failure"});
  for (bool g1 : {false, true}) {
    lhg::LhgFile::Options opts;
    opts.file.bucket_capacity = 10;
    opts.parity_bucket_capacity = 10;
    opts.group_size = 3;
    opts.reassign_group_keys_on_split = g1;
    lhg::LhgFile file(opts);
    Rng rng(1003);
    std::vector<Key> keys;
    for (int i = 0; i < 400; ++i) {
      const Key k = rng.Next64();
      if (file.Insert(k, rng.RandomBytes(32)).ok()) keys.push_back(k);
    }
    const uint64_t parity_total =
        file.network().stats().ForKind(lhg::LhgMsg::kParityUpdate).messages;

    // A4 recovery cost of the last bucket.
    const BucketNo victim = file.bucket_count() - 1;
    file.CrashDataBucket(victim);
    const uint64_t before = file.network().stats().total_messages();
    file.RecoverDataBucket(victim);
    const uint64_t recovery_msgs =
        file.network().stats().total_messages() - before;

    // Failures in two different bucket groups: recoverable iff no record
    // group spans them (always true for LH*g1).
    bool dual_ok = true;
    {
      lhg::LhgFile::Options opts2 = opts;
      lhg::LhgFile file2(opts2);
      Rng rng2(1003);
      std::vector<Key> keys2;
      for (int i = 0; i < 400; ++i) {
        const Key k = rng2.Next64();
        if (file2.Insert(k, rng2.RandomBytes(32)).ok()) keys2.push_back(k);
      }
      file2.CrashDataBucket(1);   // Group 0.
      file2.CrashDataBucket(4);   // Group 1.
      file2.RecoverDataBucket(1);
      file2.RecoverDataBucket(4);
      for (Key k : keys2) {
        if (!file2.Search(k).ok()) {
          dual_ok = false;
          break;
        }
      }
    }
    r.Row({g1 ? "LH*g1" : "LH*g", std::to_string(parity_total),
           std::to_string(recovery_msgs),
           dual_ok ? "recovered" : "DATA LOSS"});
  }
  std::puts("");
  std::puts(
      "shape check: LH*g1 pays more parity traffic for group locality; "
      "cross-group dual failures always recover under LH*g1 (and LH*RS), "
      "only sometimes under basic LH*g.");
}

}  // namespace
}  // namespace lhrs::bench

int main(int argc, char** argv) {
  lhrs::bench::BenchReport report("f7_ablations");
  lhrs::bench::RankReuseAblation(report);
  lhrs::bench::MulticastAblation(report);
  lhrs::bench::Lhg1Ablation(report);
  return lhrs::bench::WriteReport(report.report(), argc, argv);
}
