// Experiment F2 — bucket-recovery cost vs bucket size and number of
// simultaneous failures, plus the record-recovery vs bucket-recovery
// latency gap.
//
// Paper shapes to reproduce: recovery cost grows linearly with the bucket
// size b and with the number of failed columns f <= k; recovering a single
// record during degraded mode is orders of magnitude cheaper/faster than
// waiting for the full bucket rebuild.
//
// Telemetry showcase: every measured file runs with telemetry enabled; the
// report aggregates the recovery and recovery-phase latency histograms
// across all runs, and the F2c scenario leaves a Chrome-loadable trace
// (about://tracing) of its crash -> degraded read -> group rebuild.

#include <cstdio>

#include "bench/bench_util.h"
#include "lhrs/lhrs_file.h"
#include "telemetry/metrics.h"

namespace lhrs::bench {
namespace {

struct RecoveryCost {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  /// Survivor-column payload actually read for the rebuild (the
  /// recovery.repair_bytes_moved counter) — the number an LRC shrinks.
  uint64_t repair_bytes = 0;
  SimTime sim_us = 0;
};

/// Recovery-latency histograms folded across every measured run.
struct RecoveryHistograms {
  telemetry::Histogram total;
  telemetry::Histogram read_phase;
  telemetry::Histogram decode_install_phase;
  telemetry::Histogram degraded_read;

  void MergeFrom(const telemetry::MetricsRegistry& m) {
    if (const auto* h = m.FindHistogram("recovery_latency_us")) {
      total.Merge(*h);
    }
    if (const auto* h = m.FindHistogram("recovery_phase_read_us")) {
      read_phase.Merge(*h);
    }
    if (const auto* h = m.FindHistogram("recovery_phase_decode_install_us")) {
      decode_install_phase.Merge(*h);
    }
    if (const auto* h = m.FindHistogram("degraded_read_latency_us")) {
      degraded_read.Merge(*h);
    }
  }
};

/// Builds a file of ~`records` records, crashes `failures` columns of
/// group 0 (data buckets first), runs recovery, returns its cost.
RecoveryCost MeasureBucketRecovery(size_t bucket_capacity, uint32_t k,
                                   uint32_t failures, int records,
                                   RecoveryHistograms* histograms) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = bucket_capacity;
  opts.file.initial_buckets = 4;  // One full group; no splits below cap.
  opts.group_size = 4;
  opts.policy.base_k = k;
  LhrsFile file(opts);
  auto* telemetry = file.network().EnableTelemetry();
  Rng rng(500 + k * 10 + failures);
  for (int i = 0; i < records; ++i) {
    (void)file.Insert(rng.Next64(), rng.RandomBytes(64));
  }
  std::vector<NodeId> dead;
  for (uint32_t f = 0; f < failures; ++f) {
    dead.push_back(file.CrashDataBucket(f));
  }
  const uint64_t msgs_before = file.network().stats().total_messages();
  const uint64_t bytes_before = file.network().stats().total().bytes;
  const SimTime t_before = file.network().now();
  file.DetectAndRecover(dead[0]);  // Planner discovers all failed columns.
  RecoveryCost cost;
  cost.messages = file.network().stats().total_messages() - msgs_before;
  cost.bytes = file.network().stats().total().bytes - bytes_before;
  if (const auto* c =
          telemetry->metrics().FindCounter("recovery.repair_bytes_moved")) {
    cost.repair_bytes = c->value();
  }
  cost.sim_us = file.network().now() - t_before;
  LHRS_CHECK(file.VerifyParityInvariants().ok());
  histograms->MergeFrom(telemetry->metrics());
  return cost;
}

void Run(BenchReport& r, const std::string& trace_path) {
  RecoveryHistograms histograms;
  r.BeginTable("F2a — bucket recovery cost vs bucket size b (m=4, k=1, 1 failure)",
               {"b (records/bucket)", "messages", "KB moved",
                "repair KB read", "sim time (ms)"});
  for (size_t b : {25, 50, 100, 200, 400}) {
    const RecoveryCost c =
        MeasureBucketRecovery(b + 10, /*k=*/1, /*failures=*/1,
                              static_cast<int>(4 * b * 7 / 10), &histograms);
    r.Row({std::to_string(b), std::to_string(c.messages),
           Fmt(c.bytes / 1024.0, 1), Fmt(c.repair_bytes / 1024.0, 1),
           Fmt(c.sim_us / 1000.0, 2)});
  }

  std::puts("");
  r.BeginTable("F2b — recovery cost vs simultaneous failures f (m=4, b=100)",
               {"k", "f", "messages", "KB moved", "repair KB read",
                "sim time (ms)"});
  for (uint32_t k : {1u, 2u, 3u}) {
    for (uint32_t f = 1; f <= k; ++f) {
      const RecoveryCost c = MeasureBucketRecovery(110, k, f, 280,
                                                   &histograms);
      r.Row({std::to_string(k), std::to_string(f),
             std::to_string(c.messages), Fmt(c.bytes / 1024.0, 1),
             Fmt(c.repair_bytes / 1024.0, 1), Fmt(c.sim_us / 1000.0, 2)});
    }
  }

  std::puts("");
  r.BeginTable(
      "F2c — record recovery vs bucket recovery (m=4, k=2, b=2000): the "
      "degraded mode serves reads long before the bucket rebuild would",
      {"operation", "messages", "sim time (ms)"});
  {
    LhrsFile::Options opts;
    opts.file.bucket_capacity = 2100;
    opts.file.initial_buckets = 4;
    opts.group_size = 4;
    opts.policy.base_k = 2;
    opts.auto_recover = false;  // Isolate the record-recovery path.
    LhrsFile file(opts);
    // Trace only the structural events here: the load phase alone is
    // ~10k messages and would flush everything interesting out of the
    // ring long before the failure drill starts.
    telemetry::TelemetryConfig tcfg;
    tcfg.trace_messages = false;
    auto* telemetry = file.network().EnableTelemetry(tcfg);
    Rng rng(900);
    std::vector<Key> keys;
    for (int i = 0; i < 5600; ++i) {
      const Key k = rng.Next64();
      if (file.Insert(k, rng.RandomBytes(64)).ok()) keys.push_back(k);
    }
    const FileState& state = file.coordinator().state();
    Key victim_key = 0;
    for (Key k : keys) {
      if (state.Address(k) == 1) {
        victim_key = k;
        break;
      }
    }
    file.CrashDataBucket(1);
    uint64_t before = file.network().stats().total_messages();
    SimTime t_before = file.network().now();
    LHRS_CHECK(file.Search(victim_key).ok());
    r.Row({"record recovery (degraded search)",
           std::to_string(file.network().stats().total_messages() - before),
           Fmt((file.network().now() - t_before) / 1000.0, 2)});

    before = file.network().stats().total_messages();
    t_before = file.network().now();
    file.rs_coordinator().RecoverGroup(0);
    file.network().RunUntilIdle();
    r.Row({"full bucket recovery",
           std::to_string(file.network().stats().total_messages() - before),
           Fmt((file.network().now() - t_before) / 1000.0, 2)});

    histograms.MergeFrom(telemetry->metrics());
    if (WriteTextFile(trace_path, telemetry->tracer().ToChromeTrace())) {
      std::fprintf(stderr, "trace: %s (load in chrome://tracing)\n",
                   trace_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
    }
  }

  // Aggregated latency distributions across every recovery measured above.
  r.report().AddHistogram("recovery_latency_us", histograms.total);
  r.report().AddHistogram("recovery_phase_read_us", histograms.read_phase);
  r.report().AddHistogram("recovery_phase_decode_install_us",
                          histograms.decode_install_phase);
  r.report().AddHistogram("degraded_read_latency_us",
                          histograms.degraded_read);
}

}  // namespace
}  // namespace lhrs::bench

int main(int argc, char** argv) {
  lhrs::bench::BenchReport report("f2_recovery");
  report.report().AddParam("m", int64_t{4});
  report.report().AddParam("value_bytes", int64_t{64});
  std::string trace_path = "f2_recovery.trace.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) trace_path = arg.substr(8);
  }
  lhrs::bench::Run(report, trace_path);
  return lhrs::bench::WriteReport(report.report(), argc, argv);
}
