// Experiment F12 — parity-code comparison: the paper's Reed-Solomon code
// vs the locally-repairable code (LRC) vs progressive RS decoding, at the
// same geometry and availability budget (m = 4, k = 3; "lrc2" splits the
// four data slots into two local XOR groups plus one Cauchy global).
//
// Shapes to measure (the crossover story, not folklore):
//  - F12a: a single-bucket rebuild under the LRC touches only the local
//    group (r columns instead of m), so its repair traffic drops while RS
//    traffic is flat; progressive RS reads more columns but installs the
//    decode as soon as rank suffices, shortening the read phase.
//  - F12b: degraded reads under the LRC contact only the lost slot's
//    local group.
//  - F12c: what the LRC pays for that locality — it is not MDS. Failure
//    patterns an MDS code with the same k survives can lose a group.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "lhrs/lhrs_file.h"
#include "telemetry/metrics.h"

namespace lhrs::bench {
namespace {

constexpr uint32_t kM = 4;
constexpr uint32_t kK = 3;
constexpr size_t kValueBytes = 64;

LhrsFile::Options CodedOpts(const std::string& code, size_t capacity) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = capacity;
  opts.file.initial_buckets = kM;  // One full group; no splits below cap.
  opts.group_size = kM;
  opts.policy.base_k = kK;
  auto spec = parity::CodeSpec::Parse(code);
  LHRS_CHECK(spec.ok());
  opts.code = *spec;
  return opts;
}

struct RepairCost {
  uint64_t messages = 0;
  uint64_t repair_bytes = 0;
  uint64_t early_decodes = 0;
  SimTime sim_us = 0;
};

/// Loads one group with `records` records (same seed for every code, so
/// the column contents are identical), crashes one data bucket and
/// measures the rebuild.
RepairCost MeasureRepair(const std::string& code, int records) {
  LhrsFile file(CodedOpts(code, /*capacity=*/1200));
  auto* telemetry = file.network().EnableTelemetry();
  Rng rng(1200);
  for (int i = 0; i < records; ++i) {
    (void)file.Insert(rng.Next64(), rng.RandomBytes(kValueBytes));
  }
  const NodeId dead = file.CrashDataBucket(1);
  const uint64_t msgs_before = file.network().stats().total_messages();
  const SimTime t_before = file.network().now();
  file.DetectAndRecover(dead);
  LHRS_CHECK(file.VerifyParityInvariants().ok());
  RepairCost cost;
  cost.messages = file.network().stats().total_messages() - msgs_before;
  cost.sim_us = file.network().now() - t_before;
  const auto& metrics = telemetry->metrics();
  if (const auto* c = metrics.FindCounter("recovery.repair_bytes_moved")) {
    cost.repair_bytes = c->value();
  }
  if (const auto* c =
          metrics.FindCounter("recovery.progressive_early_decodes")) {
    cost.early_decodes = c->value();
  }
  return cost;
}

struct DegradedCost {
  double messages = 0;
  double kb_moved = 0;
  double latency_ms = 0;
};

/// Crashes one data bucket and serves 20 searches for its keys in
/// degraded mode (no auto recovery).
DegradedCost MeasureDegraded(const std::string& code) {
  LhrsFile::Options opts = CodedOpts(code, /*capacity=*/1200);
  opts.auto_recover = false;
  LhrsFile file(opts);
  auto* telemetry = file.network().EnableTelemetry();
  Rng rng(1300);
  std::vector<Key> keys;
  for (int i = 0; i < 2000; ++i) {
    const Key k = rng.Next64();
    if (file.Insert(k, rng.RandomBytes(kValueBytes)).ok()) keys.push_back(k);
  }
  const FileState& state = file.coordinator().state();
  const BucketNo victim = 2;
  std::vector<Key> victims;
  for (Key k : keys) {
    if (state.Address(k) == victim) victims.push_back(k);
    if (victims.size() >= 20) break;
  }
  file.CrashDataBucket(victim);
  const uint64_t before = file.network().stats().total_messages();
  for (Key k : victims) {
    LHRS_CHECK(file.Search(k).ok());
  }
  DegradedCost cost;
  cost.messages = static_cast<double>(
                      file.network().stats().total_messages() - before) /
                  victims.size();
  const auto& metrics = telemetry->metrics();
  if (const auto* c = metrics.FindCounter("degraded_read.bytes_moved")) {
    cost.kb_moved = c->value() / 1024.0 / victims.size();
  }
  if (const auto* h = metrics.FindHistogram("degraded_read_latency_us")) {
    cost.latency_ms = h->mean() / 1000.0;
  }
  return cost;
}

/// Crashes the given columns of group 0 (data slots, then parity indexes),
/// runs detection, and reports whether the group survived.
uint32_t GroupsLostAfter(const std::string& code,
                         const std::vector<BucketNo>& data_victims,
                         const std::vector<uint32_t>& parity_victims) {
  LhrsFile file(CodedOpts(code, /*capacity=*/600));
  Rng rng(1400);
  for (int i = 0; i < 400; ++i) {
    (void)file.Insert(rng.Next64(), rng.RandomBytes(kValueBytes));
  }
  std::vector<NodeId> dead;
  for (BucketNo b : data_victims) dead.push_back(file.CrashDataBucket(b));
  for (uint32_t j : parity_victims) {
    dead.push_back(file.CrashParityBucket(0, j));
  }
  file.DetectAndRecover(dead.front());
  return static_cast<uint32_t>(file.rs_coordinator().groups_lost());
}

void Run(BenchReport& r) {
  const std::vector<std::string> codes = {"rs", "rs+prog", "lrc2",
                                          "lrc2+prog"};

  r.BeginTable(
      "F12a — single data-bucket rebuild (m=4, k=3, b=1000): the LRC reads "
      "its local group, not the whole stripe",
      {"code", "messages", "repair KB read", "early decodes",
       "sim time (ms)"});
  for (const auto& code : codes) {
    const RepairCost c = MeasureRepair(code, /*records=*/2800);
    r.Row({code, std::to_string(c.messages), Fmt(c.repair_bytes / 1024.0, 1),
           std::to_string(c.early_decodes), Fmt(c.sim_us / 1000.0, 2)});
  }

  std::puts("");
  r.BeginTable(
      "F12b — degraded-mode search with the victim bucket down (m=4, k=3)",
      {"code", "msgs/search", "KB/search", "latency (ms)"});
  for (const auto& code : codes) {
    const DegradedCost c = MeasureDegraded(code);
    r.Row({code, Fmt(c.messages), Fmt(c.kb_moved), Fmt(c.latency_ms)});
  }

  std::puts("");
  r.BeginTable(
      "F12c — availability crossover: groups lost after a failure pattern "
      "(0 = survived). lrc2 trades MDS optimality for repair locality",
      {"code", "2 data, distinct local groups", "2 data, same local group",
       "2 data + their local parity"});
  for (const auto& code : codes) {
    // {0, 2} straddles the two lrc2 local groups; {0, 1} sits inside one;
    // adding parity 0 (slot {0,1}'s local XOR) kills the third equation an
    // MDS code would still have.
    const uint32_t distinct = GroupsLostAfter(code, {0, 2}, {});
    const uint32_t same = GroupsLostAfter(code, {0, 1}, {});
    const uint32_t with_parity = GroupsLostAfter(code, {0, 1}, {0});
    r.Row({code, std::to_string(distinct), std::to_string(same),
           std::to_string(with_parity)});
  }
  std::puts("");
  std::puts(
      "shape check: repair KB read shrinks under lrc2; every code survives "
      "the first two patterns, only the MDS RS survives the third.");
}

}  // namespace
}  // namespace lhrs::bench

int main(int argc, char** argv) {
  lhrs::bench::BenchReport report("f12_codes");
  report.report().AddParam("m", int64_t{4});
  report.report().AddParam("k", int64_t{3});
  report.report().AddParam("value_bytes", int64_t{64});
  lhrs::bench::Run(report);
  return lhrs::bench::WriteReport(report.report(), argc, argv);
}
