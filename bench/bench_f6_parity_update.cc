// Experiment F6 — the price of parity maintenance: insert/update cost vs
// availability level k, and the split-cost contrast between LH*RS (a split
// pays O(b) parity deltas to keep groups bucket-local) and LH*g (splits
// are parity-free by construction, the price being scan-based recovery and
// strictly 1-availability).

#include <cstdio>

#include "baselines/lhg/lhg_file.h"
#include "bench/bench_util.h"
#include "lhrs/lhrs_file.h"

namespace lhrs::bench {
namespace {

void InsertUpdateVsK(BenchReport& r) {
  r.BeginTable("F6a — LH*RS write costs vs availability level k (m=4)",
               {"k", "parity msgs/insert", "parity msgs/update",
                "parity bytes/insert"});
  for (uint32_t k = 1; k <= 4; ++k) {
    LhrsFile::Options opts;
    opts.file.bucket_capacity = 100000;  // No splits.
    opts.file.initial_buckets = 4;
    opts.group_size = 4;
    opts.policy.base_k = k;
    LhrsFile file(opts);
    Rng rng(600 + k);
    std::vector<Key> keys;
    for (int i = 0; i < 50; ++i) {
      const Key key = rng.Next64();
      if (file.Insert(key, rng.RandomBytes(64)).ok()) keys.push_back(key);
    }
    auto before = file.network().stats().ForKind(LhrsMsg::kParityDelta);
    for (int i = 0; i < 200; ++i) {
      (void)file.Insert(rng.Next64(), rng.RandomBytes(64));
    }
    auto mid = file.network().stats().ForKind(LhrsMsg::kParityDelta);
    for (int i = 0; i < 200; ++i) {
      (void)file.Update(keys[i % keys.size()], rng.RandomBytes(64));
    }
    auto after = file.network().stats().ForKind(LhrsMsg::kParityDelta);
    r.Row({std::to_string(k),
           Fmt((mid.messages - before.messages) / 200.0),
           Fmt((after.messages - mid.messages) / 200.0),
           Fmt((mid.bytes - before.bytes) / 200.0, 0)});
  }
}

void SplitCost(BenchReport& r) {
  std::puts("");
  r.BeginTable(
      "F6b — parity traffic per split: LH*RS pays O(b) deltas, LH*g pays "
      "none",
      {"scheme", "records", "splits", "parity msgs", "parity msgs/split",
       "parity KB/split"});

  constexpr int kRecords = 1500;
  constexpr size_t kCapacity = 25;
  {
    LhrsFile::Options opts;
    opts.file.bucket_capacity = kCapacity;
    opts.group_size = 4;
    opts.policy.base_k = 1;
    LhrsFile file(opts);
    Rng rng(700);
    // Baseline parity traffic: 1 delta per insert/k; everything beyond
    // that is split-induced (batch messages).
    for (int i = 0; i < kRecords; ++i) {
      (void)file.Insert(rng.Next64(), rng.RandomBytes(64));
    }
    const auto batches =
        file.network().stats().ForKind(LhrsMsg::kParityDeltaBatch);
    const uint64_t splits = file.coordinator().splits_performed();
    r.Row({"LH*RS m=4 k=1", std::to_string(kRecords),
           std::to_string(splits), std::to_string(batches.messages),
           Fmt(static_cast<double>(batches.messages) / splits),
           Fmt(batches.bytes / 1024.0 / splits, 1)});
  }
  {
    lhg::LhgFile::Options opts;
    opts.file.bucket_capacity = kCapacity;
    opts.group_size = 4;
    lhg::LhgFile file(opts);
    Rng rng(700);
    const auto updates_per_insert = 1u;
    for (int i = 0; i < kRecords; ++i) {
      (void)file.Insert(rng.Next64(), rng.RandomBytes(64));
    }
    const auto updates =
        file.network().stats().ForKind(lhg::LhgMsg::kParityUpdate);
    const uint64_t splits = file.coordinator().splits_performed();
    // Split-induced parity messages = total minus the per-insert ones
    // (forwarded updates count extra hops; report the excess).
    const uint64_t split_induced =
        updates.messages - kRecords * updates_per_insert;
    r.Row({"LH*g k_g=4", std::to_string(kRecords), std::to_string(splits),
           std::to_string(split_induced) + " (excess, incl. A2 hops)",
           Fmt(static_cast<double>(split_induced) / splits),
           "0.0 (by design)"});
  }
  std::puts("");
  std::puts(
      "shape check: LH*RS ~2k batch messages per split (movers leave + "
      "join), volume ~b/2 records; LH*g split-induced parity traffic ~0.");
}

}  // namespace
}  // namespace lhrs::bench

int main(int argc, char** argv) {
  lhrs::bench::BenchReport report("f6_parity_update");
  report.report().AddParam("value_bytes", int64_t{64});
  lhrs::bench::InsertUpdateVsK(report);
  lhrs::bench::SplitCost(report);
  return lhrs::bench::WriteReport(report.report(), argc, argv);
}
