// Experiment F11 — locality scaling of the parallel execution engine.
//
// The claim this measures: with server buckets sharded across L worker
// localities and each delivery charging real handler occupancy to its
// destination locality's virtual clock (service_us_per_task +
// service_us_per_kb·KiB), an overloaded open-loop workload completes in
// ~1/L the *simulated* time — the multicomputer scale-out story of the
// paper, measured end-to-end through the session layer on a single host.
//
// The gated table reports simulated cost (sim us/op, sim total ms): these
// come from the virtual locality clocks, so they are stable run to run
// (parallel mode is convergence-equivalent, not trace-identical — small
// interleaving jitter is far inside the checker's 20% tolerance). The
// wall-clock table is measured throughput ("/s" columns), which the
// checker only warns on: this container may have a single physical core,
// so wall-clock gains are not expected — simulated time is the metric.
//
// The binary self-checks the headline shape — ≥2x fewer sim us/op at 4
// localities than at 1 — and exits non-zero when it breaks.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "lhrs/lhrs_file.h"
#include "sdds/session.h"

namespace lhrs::bench {
namespace {

using sdds::PipelinedRunner;
using sdds::RunnerOptions;
using sdds::RunnerReport;
using sdds::SddsOp;

constexpr size_t kKeys = 400;
constexpr size_t kValueBytes = 64;
constexpr uint64_t kKeySeed = 2011;
constexpr size_t kSessions = 8;
constexpr size_t kWindow = 8;
// Handler occupancy per delivered message on the destination locality.
constexpr SimTime kServiceUsPerTask = 60;
constexpr SimTime kServiceUsPerKb = 20;

LhrsFile::Options F11Options(size_t localities) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = 16;
  opts.group_size = 4;
  opts.policy.base_k = 1;
  opts.net.localities = localities;
  opts.net.service_us_per_task = kServiceUsPerTask;
  opts.net.service_us_per_kb = kServiceUsPerKb;
  return opts;
}

/// The measured script: a search pass, an update pass (which also drives
/// the parity-delta traffic through the worker localities), and a second
/// search pass over the updated values. Growth happens before measurement
/// so the bucket population — and its shard placement — is identical at
/// every L.
std::vector<SddsOp> MakeScript(const std::vector<Key>& keys, size_t passes) {
  Rng rng(kKeySeed + 2);
  std::vector<SddsOp> script;
  script.reserve((2 * passes + 1) * keys.size());
  for (size_t p = 0; p < passes; ++p) {
    for (Key k : keys) script.push_back(SddsOp{OpType::kSearch, k, {}});
    for (Key k : keys) {
      script.push_back(
          SddsOp{OpType::kUpdate, k, rng.RandomBytes(kValueBytes)});
    }
  }
  for (Key k : keys) script.push_back(SddsOp{OpType::kSearch, k, {}});
  return script;
}

struct Cell {
  RunnerReport report;
  double sim_us_per_op = 0.0;
  double wall_seconds = 0.0;
};

Cell RunAtLocalities(size_t localities, const std::vector<Key>& keys,
                     const std::vector<SddsOp>& script) {
  LhrsFile file(F11Options(localities));
  Rng rng(kKeySeed + 1);
  for (Key k : keys) {
    const Status s = file.Insert(k, rng.RandomBytes(kValueBytes));
    LHRS_CHECK(s.ok()) << "grow insert failed: " << s.ToString();
  }

  auto next = std::make_shared<size_t>(0);
  PipelinedRunner runner(file, RunnerOptions{kSessions, kWindow, 0});
  WallTimer timer;
  Cell cell;
  cell.report = runner.Run([&](size_t /*session*/) -> std::optional<SddsOp> {
    if (*next >= script.size()) return std::nullopt;
    return script[(*next)++];
  });
  cell.wall_seconds = timer.Seconds();
  cell.sim_us_per_op = static_cast<double>(cell.report.elapsed_us()) /
                       static_cast<double>(cell.report.completed);
  return cell;
}

bool Run(BenchReport& r, size_t passes) {
  bool ok = true;
  const std::vector<Key> keys = RandomKeys(kKeys, kKeySeed);
  const std::vector<SddsOp> script = MakeScript(keys, passes);
  const std::vector<size_t> locality_counts = {1, 2, 4, 8};

  std::vector<Cell> cells;
  for (size_t localities : locality_counts) {
    cells.push_back(RunAtLocalities(localities, keys, script));
  }
  const double base_us_per_op = cells.front().sim_us_per_op;

  // Gated simulated-cost table: both columns come from the virtual
  // locality clocks. The speedup cell carries an "x" suffix so the
  // regression checker treats it as a label (a *rising* speedup must not
  // trip a higher-is-worse cost gate).
  r.BeginTable(
      "F11 — locality scaling (LH*RS m=4 k=1; " +
          std::to_string(script.size()) + " ops, N=" +
          std::to_string(kSessions) + " W=" + std::to_string(kWindow) +
          ", service " + std::to_string(kServiceUsPerTask) + "us/task + " +
          std::to_string(kServiceUsPerKb) + "us/KiB)",
      {"localities", "ops", "sim us/op", "sim total ms", "speedup vs L=1",
       "failures"});
  for (size_t i = 0; i < locality_counts.size(); ++i) {
    const Cell& cell = cells[i];
    r.Row({std::to_string(locality_counts[i]),
           std::to_string(cell.report.completed), Fmt(cell.sim_us_per_op),
           Fmt(static_cast<double>(cell.report.elapsed_us()) / 1e3),
           Fmt(base_us_per_op / cell.sim_us_per_op) + "x",
           std::to_string(cell.report.failures)});
    if (cell.report.completed != script.size() || cell.report.failures != 0) {
      std::fprintf(stderr, "FAIL: L=%zu lost ops (%llu/%zu, %llu failed)\n",
                   locality_counts[i],
                   static_cast<unsigned long long>(cell.report.completed),
                   script.size(),
                   static_cast<unsigned long long>(cell.report.failures));
      ok = false;
    }
  }
  std::puts("");

  // Wall-clock view, warn-only ("/s" columns): latency percentiles ride
  // here too, since completion-order jitter moves the tail more than the
  // aggregate clocks. On a single-core host the ops/s column is flat —
  // the engine's parallelism is *simulated* cores, not host threads.
  r.BeginTable(
      "F11 — locality scaling, wall clock + latency (not gated)",
      {"localities", "ops/s", "wall ms", "p50 us", "p95 us", "p99 us"});
  for (size_t i = 0; i < locality_counts.size(); ++i) {
    const Cell& cell = cells[i];
    const double s = cell.wall_seconds > 0 ? cell.wall_seconds : 1e-9;
    r.Row({std::to_string(locality_counts[i]),
           FmtRate(static_cast<double>(cell.report.completed) / s, "ops/s"),
           Fmt(cell.wall_seconds * 1e3),
           std::to_string(cell.report.LatencyPercentileUs(50)),
           std::to_string(cell.report.LatencyPercentileUs(95)),
           std::to_string(cell.report.LatencyPercentileUs(99))});
  }
  std::puts("");

  // Headline shape: 4 localities must at least halve the simulated cost
  // per op relative to 1 (the acceptance bar; the ideal is 4x minus
  // placement imbalance and the home-locality client path).
  const double speedup4 = base_us_per_op / cells[2].sim_us_per_op;
  if (speedup4 < 2.0) {
    std::fprintf(stderr,
                 "FAIL: sim speedup at 4 localities is %.2fx (< 2.0x): "
                 "%.2f us/op vs %.2f us/op at L=1\n",
                 speedup4, cells[2].sim_us_per_op, base_us_per_op);
    ok = false;
  }
  std::printf("shape check: sim us/op shrinks with localities; "
              "4 localities = %.2fx over 1 (threshold 2.0x).\n",
              speedup4);
  return ok;
}

}  // namespace
}  // namespace lhrs::bench

int main(int argc, char** argv) {
  size_t passes = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--passes=", 9) == 0) {
      passes = static_cast<size_t>(std::strtoull(argv[i] + 9, nullptr, 10));
      if (passes == 0) passes = 1;
    }
  }
  lhrs::bench::BenchReport report("f11_scaling");
  report.report().AddParam("keys", int64_t{lhrs::bench::kKeys});
  report.report().AddParam("key_seed", int64_t{lhrs::bench::kKeySeed});
  report.report().AddParam("value_bytes", int64_t{lhrs::bench::kValueBytes});
  report.report().AddParam("sessions", int64_t{lhrs::bench::kSessions});
  report.report().AddParam("window", int64_t{lhrs::bench::kWindow});
  report.report().AddParam("service_us_per_task",
                           int64_t{lhrs::bench::kServiceUsPerTask});
  report.report().AddParam("service_us_per_kb",
                           int64_t{lhrs::bench::kServiceUsPerKb});
  report.report().AddParam("passes", static_cast<int64_t>(passes));
  const bool ok = lhrs::bench::Run(report, passes);
  const int write_rc = lhrs::bench::WriteReport(report.report(), argc, argv);
  return ok ? write_rc : 1;
}
