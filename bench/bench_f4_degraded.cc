// Experiment F4 — degraded-mode performance: serving a key search whose
// bucket is down, as the file grows.
//
// Paper shapes to reproduce: LH*RS record recovery costs O(m + k) messages
// *independent of M* (the group's parity buckets are known), while LH*g's
// A7 must scan the whole parity file — O(M / k_g) messages, growing
// linearly with the file. This is the headline read-availability win of
// parity grouping with known locations.

#include <cstdio>

#include "analysis/cost_model.h"
#include "baselines/lhg/lhg_file.h"
#include "bench/bench_util.h"
#include "lhrs/lhrs_file.h"
#include "telemetry/metrics.h"

namespace lhrs::bench {
namespace {

constexpr size_t kValueBytes = 64;

/// Per-search cost of a degraded LH*RS read (messages, survivor payload
/// moved, simulated latency).
struct DegradedReadCost {
  double messages = 0;
  double kb_moved = 0;
  double latency_ms = 0;  ///< Mean of the degraded_read_latency_us histogram.
};

/// Measures degraded searches after growing the file to at least
/// `target_buckets` data buckets.
DegradedReadCost MeasureLhrs(BucketNo target_buckets) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = 16;
  opts.group_size = 4;
  opts.policy.base_k = 2;
  opts.auto_recover = false;  // Stay in degraded mode.
  LhrsFile file(opts);
  auto* telemetry = file.network().EnableTelemetry();
  Rng rng(4242);
  std::vector<Key> keys;
  while (file.bucket_count() < target_buckets) {
    const Key k = rng.Next64();
    if (file.Insert(k, rng.RandomBytes(kValueBytes)).ok()) keys.push_back(k);
  }
  const FileState& state = file.coordinator().state();
  const BucketNo victim = file.bucket_count() / 2;
  std::vector<Key> victims;
  for (Key k : keys) {
    if (state.Address(k) == victim) victims.push_back(k);
    if (victims.size() >= 20) break;
  }
  file.CrashDataBucket(victim);
  const uint64_t before = file.network().stats().total_messages();
  for (Key k : victims) {
    LHRS_CHECK(file.Search(k).ok());
  }
  DegradedReadCost cost;
  cost.messages = static_cast<double>(
                      file.network().stats().total_messages() - before) /
                  victims.size();
  if (const auto* c =
          telemetry->metrics().FindCounter("degraded_read.bytes_moved")) {
    cost.kb_moved = c->value() / 1024.0 / victims.size();
  }
  if (const auto* h =
          telemetry->metrics().FindHistogram("degraded_read_latency_us")) {
    cost.latency_ms = h->mean() / 1000.0;
  }
  return cost;
}

double MeasureLhg(BucketNo target_buckets, BucketNo* parity_buckets) {
  lhg::LhgFile::Options opts;
  opts.file.bucket_capacity = 16;
  opts.parity_bucket_capacity = 16;
  opts.group_size = 4;
  lhg::LhgFile file(opts);
  file.lhg_coordinator().set_auto_recover(false);  // Isolate A7.
  Rng rng(4242);
  std::vector<Key> keys;
  while (file.bucket_count() < target_buckets) {
    const Key k = rng.Next64();
    if (file.Insert(k, rng.RandomBytes(kValueBytes)).ok()) keys.push_back(k);
  }
  *parity_buckets = file.parity_bucket_count();
  const FileState& state = file.coordinator().state();
  const BucketNo victim = file.bucket_count() / 2;
  std::vector<Key> victims;
  for (Key k : keys) {
    if (state.Address(k) == victim) victims.push_back(k);
    if (victims.size() >= 20) break;
  }
  file.CrashDataBucket(victim);
  // Only the first search is purely degraded: LH*g's A7 also kicks off the
  // A4 bucket rebuild, after which searches are normal again. Measure that
  // first search (its cost includes the A7 parity-file scan).
  const uint64_t before = file.network().stats().total_messages();
  LHRS_CHECK(file.Search(victims.front()).ok());
  return static_cast<double>(file.network().stats().total_messages() -
                             before);
}

void Run(BenchReport& r) {
  r.BeginTable(
      "F4 — degraded-mode key search cost vs file size (victim bucket "
      "down)",
      {"data buckets", "LH*RS msgs/search", "LH*RS KB/search",
       "LH*RS latency (ms)", "model O(m+k)", "LH*g msgs/search",
       "model O(M2)", "LH*g parity bkts"});
  for (BucketNo target : {8u, 16u, 32u, 64u, 128u}) {
    const DegradedReadCost lhrs_cost = MeasureLhrs(target);
    BucketNo m2 = 0;
    const double lhg_cost = MeasureLhg(target, &m2);
    r.Row({std::to_string(target), Fmt(lhrs_cost.messages),
           Fmt(lhrs_cost.kb_moved), Fmt(lhrs_cost.latency_ms),
           Fmt(CostModel::LhrsRecordRecovery(4)), Fmt(lhg_cost),
           Fmt(CostModel::LhgRecordRecovery(m2, 4)), std::to_string(m2)});
  }
  std::puts("");
  std::puts(
      "shape check: LH*RS column flat in M; LH*g column grows ~linearly "
      "with its parity-file size.");
}

}  // namespace
}  // namespace lhrs::bench

int main(int argc, char** argv) {
  lhrs::bench::BenchReport report("f4_degraded");
  report.report().AddParam("seed", int64_t{4242});
  report.report().AddParam("value_bytes", int64_t{64});
  lhrs::bench::Run(report);
  return lhrs::bench::WriteReport(report.report(), argc, argv);
}
