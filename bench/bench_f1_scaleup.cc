// Experiment F1 — client access cost while the file scales up.
//
// Paper shapes to reproduce: the LH* substrate keeps insert ~1 message and
// search ~2 messages (request+reply) *independent of M*; forwarding is
// bounded by two hops; a brand-new client converges with O(log M) IAMs.

#include <cstdio>

#include "bench/bench_util.h"
#include "lhrs/lhrs_file.h"

namespace lhrs::bench {
namespace {

void Run(BenchReport& r) {
  r.BeginTable("F1 — access costs while the LH*RS file scales (m=4, k=1, b=20)",
               {"buckets", "records", "msgs/insert(win)", "search msgs",
                "fwd rate", "new-client IAMs", "new-client search"});

  LhrsFile::Options opts;
  opts.file.bucket_capacity = 20;
  opts.group_size = 4;
  opts.policy.base_k = 1;
  LhrsFile file(opts);
  Rng rng(77);

  BucketNo next_checkpoint = 4;
  uint64_t window_msgs_start = 0;
  int window_inserts = 0;
  int total_records = 0;

  while (file.bucket_count() < 256) {
    ++window_inserts;
    ++total_records;
    (void)file.Insert(rng.Next64(), rng.RandomBytes(32));
    if (file.bucket_count() < next_checkpoint) continue;
    next_checkpoint *= 2;

    const uint64_t msgs_now = file.network().stats().total_messages();
    const double per_insert =
        static_cast<double>(msgs_now - window_msgs_start) / window_inserts;

    // Steady-state search cost with the (converged) default client.
    const uint64_t fwd_before = file.client(0).forwarded_ops();
    uint64_t search_start = file.network().stats().total_messages();
    constexpr int kProbes = 200;
    for (int i = 0; i < kProbes; ++i) (void)file.Search(rng.Next64());
    const double per_search =
        static_cast<double>(file.network().stats().total_messages() -
                            search_start) /
        kProbes;
    const double fwd_rate =
        static_cast<double>(file.client(0).forwarded_ops() - fwd_before) /
        kProbes;

    // A brand-new client: image (0,0). Count IAMs to convergence and its
    // very first search cost (worst case: up to 2 hops + IAM).
    const size_t fresh = file.AddClient();
    ClientNode& c = file.client(fresh);
    uint64_t first_search_start = file.network().stats().total_messages();
    (void)file.SearchVia(fresh, rng.Next64());
    const double first_search =
        static_cast<double>(file.network().stats().total_messages() -
                            first_search_start);
    for (int i = 0; i < 3000 && c.image().presumed_bucket_count() <
                                    file.bucket_count();
         ++i) {
      (void)file.SearchVia(fresh, rng.Next64());
    }
    r.Row({std::to_string(file.bucket_count()),
           std::to_string(total_records), Fmt(per_insert), Fmt(per_search),
           Fmt(fwd_rate, 3), std::to_string(c.iam_count()),
           Fmt(first_search, 0)});

    window_msgs_start = file.network().stats().total_messages();
    window_inserts = 0;
  }
  std::puts("");
  std::puts(
      "shape check: msgs/insert and search msgs flat in M; IAMs ~ log2(M).");
}

}  // namespace
}  // namespace lhrs::bench

int main(int argc, char** argv) {
  lhrs::bench::BenchReport report("f1_scaleup");
  report.report().AddParam("seed", int64_t{77});
  report.report().AddParam("bucket_capacity", int64_t{20});
  lhrs::bench::Run(report);
  return lhrs::bench::WriteReport(report.report(), argc, argv);
}
