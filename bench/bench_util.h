#ifndef LHRS_BENCH_BENCH_UTIL_H_
#define LHRS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "lh/lh_math.h"

namespace lhrs::bench {

/// Prints a markdown-ish table row. All experiment binaries emit their
/// table in this format so EXPERIMENTS.md can quote them directly.
inline void PrintRow(const std::vector<std::string>& cells) {
  std::string line = "|";
  for (const auto& c : cells) {
    line += " " + c + " |";
  }
  std::puts(line.c_str());
}

inline void PrintRule(size_t columns) {
  std::string line = "|";
  for (size_t i = 0; i < columns; ++i) line += "---|";
  std::puts(line.c_str());
}

inline std::string Fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtSci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

/// Generates `n` distinct random keys.
inline std::vector<Key> RandomKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Key> keys;
  keys.reserve(n);
  std::set<Key> seen;
  while (seen.size() < n) {
    const Key k = rng.Next64();
    if (seen.insert(k).second) keys.push_back(k);
  }
  return keys;
}

}  // namespace lhrs::bench

#endif  // LHRS_BENCH_BENCH_UTIL_H_
