#ifndef LHRS_BENCH_BENCH_UTIL_H_
#define LHRS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "lh/lh_math.h"
#include "telemetry/run_report.h"

namespace lhrs::bench {

/// Prints a markdown-ish table row. All experiment binaries emit their
/// table in this format so EXPERIMENTS.md can quote them directly.
inline void PrintRow(const std::vector<std::string>& cells) {
  std::string line = "|";
  for (const auto& c : cells) {
    line += " " + c + " |";
  }
  std::puts(line.c_str());
}

inline void PrintRule(size_t columns) {
  std::string line = "|";
  for (size_t i = 0; i < columns; ++i) line += "---|";
  std::puts(line.c_str());
}

inline std::string Fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtSci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

/// Formats a rate with a K/M/G suffix, e.g. 1.53M ops/s or 37.6G B/s.
inline std::string FmtRate(double per_sec, const char* unit) {
  const char* suffix = "";
  if (per_sec >= 1e9) {
    per_sec /= 1e9;
    suffix = "G";
  } else if (per_sec >= 1e6) {
    per_sec /= 1e6;
    suffix = "M";
  } else if (per_sec >= 1e3) {
    per_sec /= 1e3;
    suffix = "K";
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.2f%s %s", per_sec, suffix, unit);
  return buf;
}

/// Wall-clock stopwatch for measured-throughput tables (as opposed to the
/// simulated-cost tables, which count messages and simulated time).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Console + report dual writer. Every experiment binary drives one of
/// these: tables print in the usual markdown format (EXPERIMENTS.md quotes
/// stdout directly) and are simultaneously recorded into a
/// telemetry::RunReport, which main() writes as <name>.report.json via
/// WriteReport. Runs are seeded, so simulated-cost tables are
/// byte-identical across identical invocations and can be diffed as bench
/// trajectories; ThroughputRow tables are wall-clock measurements and are
/// not (diff those with a tolerance).
class BenchReport {
 public:
  explicit BenchReport(std::string name) : report_(std::move(name)) {}

  telemetry::RunReport& report() { return report_; }

  /// Prints "# <title>" plus the header row and rule, and opens the
  /// matching table in the report.
  void BeginTable(const std::string& title, std::vector<std::string> header) {
    std::puts(("# " + title).c_str());
    PrintRow(header);
    PrintRule(header.size());
    report_.BeginTable(title, std::move(header));
  }

  /// Appends a row to both the console table and the report table.
  void Row(std::vector<std::string> cells) {
    PrintRow(cells);
    report_.AddTableRow(std::move(cells));
  }

  /// Appends a measured-throughput row: the operation label, counts, and
  /// the derived ops/sec and bytes/sec. Use under a table whose header
  /// ends with {"ops", "bytes", "ops/s", "bytes/s"}. Unlike the
  /// simulated-cost rows, these rates come from wall-clock timing and
  /// vary run to run; regression gates on them need a tolerance.
  void ThroughputRow(const std::string& label, uint64_t ops, uint64_t bytes,
                     double seconds) {
    const double s = seconds > 0 ? seconds : 1e-9;
    Row({label, std::to_string(ops), std::to_string(bytes),
         FmtRate(static_cast<double>(ops) / s, "ops/s"),
         FmtRate(static_cast<double>(bytes) / s, "B/s")});
  }

 private:
  telemetry::RunReport report_;
};

/// Writes `report` to "<name>.report.json" (overridable with
/// --report=<path>), status line on stderr so stdout stays quotable.
/// Returns the process exit code for main().
inline int WriteReport(const telemetry::RunReport& report, int argc,
                       char** argv) {
  std::string path = report.name() + ".report.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--report=", 0) == 0) path = arg.substr(9);
  }
  if (!report.WriteFile(path)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "report: %s\n", path.c_str());
  return 0;
}

/// Writes raw text (typically a Chrome trace) to `path`.
inline bool WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = written == text.size();
  return (std::fclose(f) == 0) && ok;
}

/// Generates `n` distinct random keys.
inline std::vector<Key> RandomKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Key> keys;
  keys.reserve(n);
  std::set<Key> seen;
  while (seen.size() < n) {
    const Key k = rng.Next64();
    if (seen.insert(k).second) keys.push_back(k);
  }
  return keys;
}

}  // namespace lhrs::bench

#endif  // LHRS_BENCH_BENCH_UTIL_H_
