// Experiment F9 — open-loop concurrency through the session layer.
//
// The SDDS claim this measures: with autonomous clients, throughput grows
// with the number of clients because operations from different sessions
// overlap in the network, while the per-operation message cost stays the
// flat per-op cost of T2 (no coordination added by concurrency). The
// scheme comparison inherits T2's messaging story: LH*RS searches stay 2
// messages where LH*s pays 2k, and LH*m doubles every write.
//
// All tables are simulated-cost tables (us/op, latency percentiles,
// msgs/op): deterministic, byte-identical across runs, gated by
// tools/check_bench_regression.py against BENCH_f9_concurrency.json.
//
// The binary self-checks the headline shapes (us/op strictly improving
// from 1 to 8 clients; steady-state msgs/op flat across client counts)
// and exits non-zero when they break.

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "baselines/lhg/lhg_file.h"
#include "baselines/lhm/lhm_file.h"
#include "baselines/lhs/lhs_file.h"
#include "bench/bench_util.h"
#include "lhrs/lhrs_file.h"
#include "lhstar/lhstar_file.h"
#include "lhrs/messages.h"
#include "sdds/session.h"
#include "transport/cluster.h"
#include "transport/wire.h"

namespace lhrs::bench {
namespace {

using sdds::PipelinedRunner;
using sdds::RunnerOptions;
using sdds::RunnerReport;
using sdds::SddsOp;

constexpr size_t kKeys = 400;
constexpr size_t kValueBytes = 32;
constexpr uint64_t kKeySeed = 1009;

struct Scheme {
  const char* name;
  std::function<std::unique_ptr<sdds::SddsFile>()> make;
};

std::vector<Scheme> Schemes() {
  std::vector<Scheme> schemes;
  schemes.push_back({"LH*", [] {
                       LhStarFile::Options opts;
                       opts.file.bucket_capacity = 16;
                       return std::make_unique<LhStarFile>(opts);
                     }});
  schemes.push_back({"LH*RS m=4 k=1", [] {
                       LhrsFile::Options opts;
                       opts.file.bucket_capacity = 16;
                       opts.group_size = 4;
                       opts.policy.base_k = 1;
                       return std::make_unique<LhrsFile>(opts);
                     }});
  schemes.push_back({"LH*g k=3", [] {
                       lhg::LhgFile::Options opts;
                       opts.file.bucket_capacity = 16;
                       return std::make_unique<lhg::LhgFile>(opts);
                     }});
  schemes.push_back({"LH*m", [] {
                       lhm::LhmFile::Options opts;
                       opts.file.bucket_capacity = 16;
                       return std::make_unique<lhm::LhmFile>(opts);
                     }});
  schemes.push_back({"LH*s k=4", [] {
                       lhs::LhsFile::Options opts;
                       opts.file.bucket_capacity = 16;
                       opts.stripe_count = 4;
                       return std::make_unique<lhs::LhsFile>(opts);
                     }});
  return schemes;
}

/// The growth workload: insert every key, then search every key — the
/// same script for every scheme and every (N, W) point.
std::vector<SddsOp> MakeScript(const std::vector<Key>& keys) {
  Rng rng(kKeySeed + 1);
  std::vector<SddsOp> script;
  script.reserve(2 * keys.size());
  for (Key k : keys) {
    script.push_back(SddsOp{OpType::kInsert, k, rng.RandomBytes(kValueBytes)});
  }
  for (Key k : keys) script.push_back(SddsOp{OpType::kSearch, k, {}});
  return script;
}

/// The steady-state workload: `passes` search sweeps over a grown file.
/// Fresh clients converge their file image inside the first few ops; two
/// passes amortise that one-time cost so msgs/op reflects the steady state.
std::vector<SddsOp> MakeSearchScript(const std::vector<Key>& keys,
                                     size_t passes) {
  std::vector<SddsOp> script;
  script.reserve(passes * keys.size());
  for (size_t p = 0; p < passes; ++p) {
    for (Key k : keys) script.push_back(SddsOp{OpType::kSearch, k, {}});
  }
  return script;
}

/// Grows a fresh file to kKeys records through the synchronous facade.
void GrowFile(sdds::SddsFile& file, const std::vector<Key>& keys) {
  Rng rng(kKeySeed + 1);
  for (Key k : keys) {
    const Status s = file.Insert(k, rng.RandomBytes(kValueBytes));
    LHRS_CHECK(s.ok()) << "grow insert failed: " << s.ToString();
  }
}

struct Cell {
  RunnerReport report;
  double msgs_per_op = 0.0;
  double us_per_op = 0.0;
};

/// Runs `script` through a fresh pipelined runner; `on_submit` (optional)
/// observes each submission index — the mid-stream fault hook.
Cell RunCell(sdds::SddsFile& file, const std::vector<SddsOp>& script,
             size_t sessions, size_t window,
             const std::function<void(uint64_t)>& on_submit = {}) {
  const uint64_t msgs_before = file.network().stats().total_messages();
  uint64_t submitted = 0;
  auto next = std::make_shared<size_t>(0);
  PipelinedRunner runner(file, RunnerOptions{sessions, window, 0});
  Cell cell;
  cell.report = runner.Run([&](size_t /*session*/) -> std::optional<SddsOp> {
    if (*next >= script.size()) return std::nullopt;
    if (on_submit) on_submit(submitted);
    ++submitted;
    return script[(*next)++];
  });
  const uint64_t msgs =
      file.network().stats().total_messages() - msgs_before;
  cell.msgs_per_op =
      static_cast<double>(msgs) / static_cast<double>(cell.report.completed);
  cell.us_per_op = static_cast<double>(cell.report.elapsed_us()) /
                   static_cast<double>(cell.report.completed);
  return cell;
}

std::vector<std::string> CellRow(const std::string& label, size_t clients,
                                 size_t window, const Cell& cell) {
  return {label,
          std::to_string(clients),
          std::to_string(window),
          Fmt(cell.us_per_op),
          std::to_string(cell.report.LatencyPercentileUs(50)),
          std::to_string(cell.report.LatencyPercentileUs(95)),
          std::to_string(cell.report.LatencyPercentileUs(99)),
          Fmt(cell.msgs_per_op),
          std::to_string(cell.report.failures)};
}

bool Run(BenchReport& r) {
  bool ok = true;
  const std::vector<Key> keys = RandomKeys(kKeys, kKeySeed);
  const std::vector<SddsOp> script = MakeScript(keys);
  const std::vector<SddsOp> steady = MakeSearchScript(keys, 2);
  const std::vector<size_t> client_counts = {1, 2, 4, 8};

  // Table A measures the steady state: the file is grown to 400 records
  // first (not measured), then N fresh clients sweep every key twice.
  // Growth is excluded because a growing file charges every client its
  // own image-convergence cost (forwards + IAMs scale with client count —
  // inherent SDDS client autonomy, not pipelining overhead); the window
  // sweep in Table B keeps inserts and splits in the measured path.
  r.BeginTable(
      "F9 — open-loop scaling by client count (W=4; 800 searches over 400 "
      "keys, b=16)",
      {"scheme", "clients", "window", "sim us/op", "p50 us", "p95 us",
       "p99 us", "msgs/op", "failures"});
  for (const Scheme& scheme : Schemes()) {
    double prev_us_per_op = 0.0;
    double w1_msgs_per_op = 0.0;
    for (size_t clients : client_counts) {
      auto file = scheme.make();
      GrowFile(*file, keys);
      const size_t window = clients == 1 ? 1 : 4;
      const Cell cell = RunCell(*file, steady, clients, window);
      r.Row(CellRow(scheme.name, clients, window, cell));
      if (cell.report.completed != steady.size() ||
          cell.report.failures != 0) {
        std::fprintf(stderr, "FAIL: %s N=%zu lost ops (%llu/%zu, %llu failed)\n",
                     scheme.name, clients,
                     static_cast<unsigned long long>(cell.report.completed),
                     steady.size(),
                     static_cast<unsigned long long>(cell.report.failures));
        ok = false;
      }
      // Shape check 1: more clients never slow the file down; the
      // improvement must be strict at every doubling.
      if (clients > 1 && cell.us_per_op >= prev_us_per_op) {
        std::fprintf(stderr,
                     "FAIL: %s us/op not improving at N=%zu (%.2f >= %.2f)\n",
                     scheme.name, clients, cell.us_per_op, prev_us_per_op);
        ok = false;
      }
      prev_us_per_op = cell.us_per_op;
      // Shape check 2: concurrency adds no coordination messages — per-op
      // cost stays the closed-loop (T2) cost within 5%. The slack covers
      // the one-time image convergence each fresh client pays (a few
      // forwards + IAMs, amortised over its share of 800 searches).
      if (clients == 1) {
        w1_msgs_per_op = cell.msgs_per_op;
      } else if (cell.msgs_per_op > w1_msgs_per_op * 1.05 ||
                 cell.msgs_per_op < w1_msgs_per_op * 0.95) {
        std::fprintf(stderr,
                     "FAIL: %s msgs/op moved with concurrency "
                     "(N=%zu: %.3f vs W=1: %.3f)\n",
                     scheme.name, clients, cell.msgs_per_op, w1_msgs_per_op);
        ok = false;
      }
    }
  }
  std::puts("");

  r.BeginTable("F9 — LH*RS window sweep (4 clients, m=4, k=1)",
               {"scheme", "clients", "window", "sim us/op", "p50 us",
                "p95 us", "p99 us", "msgs/op", "failures"});
  for (size_t window : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    LhrsFile::Options opts;
    opts.file.bucket_capacity = 16;
    opts.group_size = 4;
    opts.policy.base_k = 1;
    LhrsFile file(opts);
    const Cell cell = RunCell(file, script, 4, window);
    r.Row(CellRow("LH*RS m=4 k=1", 4, window, cell));
  }
  std::puts("");

  // Degraded-mode variant: a data bucket dies while half the searches are
  // already pipelined. Ops aimed at it bounce to the coordinator, recovery
  // reconstructs the bucket from the parity group, and the stream finishes
  // with zero failures — at a visible p99 and msgs/op premium.
  r.BeginTable(
      "F9 — degraded mid-stream (LH*RS m=4 k=1; crash at half the searches)",
      {"variant", "clients", "window", "sim us/op", "p50 us", "p95 us",
       "p99 us", "msgs/op", "failures"});
  std::vector<SddsOp> searches;
  for (Key k : keys) searches.push_back(SddsOp{OpType::kSearch, k, {}});
  for (const bool crash : {false, true}) {
    LhrsFile::Options opts;
    opts.file.bucket_capacity = 16;
    opts.group_size = 4;
    opts.policy.base_k = 1;
    LhrsFile file(opts);
    Rng rng(kKeySeed + 1);
    for (Key k : keys) {
      if (!file.Insert(k, rng.RandomBytes(kValueBytes)).ok()) ok = false;
    }
    const Cell cell = RunCell(
        file, searches, 4, 4, [&](uint64_t submitted) {
          if (crash && submitted == searches.size() / 2) {
            file.CrashDataBucket(1);
          }
        });
    r.Row(CellRow(crash ? "crash mid-stream" : "healthy", 4, 4, cell));
    if (cell.report.failures != 0 ||
        cell.report.completed != searches.size()) {
      std::fprintf(stderr, "FAIL: degraded variant lost ops\n");
      ok = false;
    }
  }
  std::puts("");
  std::puts(
      "shape check: us/op strictly improves 1->8 clients at flat msgs/op; "
      "mid-stream crash finishes with 0 failures.");
  return ok;
}

// --transport=udp: the same open-loop concurrency story, but measured over
// the real-socket cluster backend instead of the simulator — an in-process
// coordinator + servers + clients, each with its own runtime, exchanging
// UDP requests / parity deltas and TCP recovery bulk on the loopback.
// Wall-clock numbers vary run to run, so this mode is reported (committed
// as BENCH_f9_cluster.json for trajectory eyeballing) but never gated.
bool RunCluster(BenchReport& r) {
  using transport::ClusterClient;
  using transport::ClusterCoordinator;
  using transport::ClusterLayout;
  using transport::ClusterMemberOptions;
  using transport::ClusterServer;
  using transport::ControlListener;

  // Pre-register the global registries single-threaded; the member
  // threads' own registration calls then find everything in place.
  RegisterLhStarMessageNames();
  RegisterLhrsMessageNames();
  transport::RegisterAllWireCodecs();

  ClusterLayout layout;  // 3 servers + 2 clients, as in examples/cluster.
  layout.file.initial_buckets = 4;
  layout.file.bucket_capacity = 32;
  layout.group_size = 4;
  layout.base_k = 1;
  constexpr uint32_t kClusterKeys = 120;

  ControlListener probe;
  if (!probe.Open(0).ok()) {
    std::fprintf(stderr, "FAIL: cannot allocate control port\n");
    return false;
  }
  const uint16_t port = probe.port();
  probe.Close();

  const auto member_options = [&](int /*rank*/) {
    ClusterMemberOptions options;
    options.layout = layout;
    options.control_port = port;
    options.deadline_ms = 60'000;
    return options;
  };

  ClusterCoordinator::Options coord_options;
  static_cast<ClusterMemberOptions&>(coord_options) = member_options(0);
  coord_options.crash_bucket = 1;
  ClusterCoordinator coordinator(coord_options);

  std::vector<int> codes(layout.total_ranks(), -1);
  std::vector<std::thread> threads;
  threads.emplace_back([&] { codes[0] = coordinator.Run(); });
  for (uint32_t s = 0; s < layout.server_ranks; ++s) {
    const int rank = 1 + static_cast<int>(s);
    threads.emplace_back([&, rank] {
      ClusterServer server(member_options(rank), rank);
      codes[rank] = server.Run();
    });
  }
  for (uint32_t c = 0; c < layout.client_ranks; ++c) {
    const int rank = 1 + static_cast<int>(layout.server_ranks + c);
    threads.emplace_back([&, rank] {
      ClusterClient client(member_options(rank), rank, kClusterKeys);
      codes[rank] = client.Run();
    });
  }
  for (std::thread& t : threads) t.join();

  bool ok = true;
  for (size_t rank = 0; rank < codes.size(); ++rank) {
    if (codes[rank] != 0) {
      std::fprintf(stderr, "FAIL: cluster rank %zu exited %d\n", rank,
                   codes[rank]);
      ok = false;
    }
  }

  r.BeginTable(
      "F9 — cluster mode (udp transport; 3 servers + 2 clients on the "
      "loopback; phase 1 = mixed workload with splits, then a bucket crash "
      "+ RS recovery, phase 2 = verification reads)",
      {"phase", "client rank", "ops", "failures", "elapsed ms", "ops/s",
       "p50 us", "p95 us", "p99 us"});
  for (const auto& [key, result] : coordinator.results()) {
    const double secs =
        static_cast<double>(result.elapsed_us) / 1e6;
    r.Row({std::to_string(key.first), std::to_string(key.second),
           std::to_string(result.ops), std::to_string(result.failures),
           Fmt(static_cast<double>(result.elapsed_us) / 1e3),
           Fmt(secs > 0 ? static_cast<double>(result.ops) / secs : 0.0),
           std::to_string(result.p50_us), std::to_string(result.p95_us),
           std::to_string(result.p99_us)});
    if (!result.ok || result.failures != 0) {
      std::fprintf(stderr, "FAIL: phase %u rank %d had failures\n",
                   key.first, key.second);
      ok = false;
    }
  }
  std::puts("");
  std::puts(
      "shape check: both phases finish on every client with 0 failures "
      "across a real-socket split and recovery.");
  return ok;
}

}  // namespace
}  // namespace lhrs::bench

int main(int argc, char** argv) {
  bool cluster = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--transport=udp") == 0) cluster = true;
  }
  if (cluster) {
    lhrs::bench::BenchReport report("f9_cluster");
    report.report().AddParam("transport", "udp");
    report.report().AddParam("servers", int64_t{3});
    report.report().AddParam("clients", int64_t{2});
    report.report().AddParam("keys_per_session", int64_t{120});
    const bool ok = lhrs::bench::RunCluster(report);
    const int write_rc = lhrs::bench::WriteReport(report.report(), argc, argv);
    return ok ? write_rc : 1;
  }
  lhrs::bench::BenchReport report("f9_concurrency");
  report.report().AddParam("keys", int64_t{lhrs::bench::kKeys});
  report.report().AddParam("key_seed", int64_t{lhrs::bench::kKeySeed});
  report.report().AddParam("value_bytes", int64_t{lhrs::bench::kValueBytes});
  const bool ok = lhrs::bench::Run(report);
  const int write_rc = lhrs::bench::WriteReport(report.report(), argc, argv);
  return ok ? write_rc : 1;
}
