// Experiment T3 — Galois-field and Reed-Solomon kernel throughput across
// the runtime-dispatched ISA tiers (gf/kernels.h).
//
// Paper shapes to reproduce: the XOR fast path (parity column 0 /
// coefficient 1) beats general field multiply-add; GF(2^16)'s wider
// symbols trade table size for per-byte work vs GF(2^8); erasure decode
// costs roughly an encode plus a small matrix inversion; incremental
// delta updates beat full re-encodes.
//
// Every kernel row is repeated for every tier available on this machine
// (scalar reference, word-wise portable floor, and whichever of
// SSSE3/AVX2/NEON the CPU offers), so the per-ISA speedups are directly
// quotable. Encode/decode rows force each tier through
// ForceActiveKernelsForTesting to show the end-to-end effect on the
// coder. Acceptance self-check: when an AVX2 (or NEON) tier is present,
// GF(2^8) MulAdd at 4 KiB must be >= 4x the word-wise kernel, else the
// binary exits non-zero.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/buffer.h"
#include "common/rng.h"
#include "gf/gf256.h"
#include "gf/gf65536.h"
#include "gf/kernels.h"
#include "rs/coder.h"

namespace lhrs::bench {
namespace {

Bytes MakeBuffer(size_t n, uint64_t seed) {
  Rng rng(seed);
  return rng.RandomBytes(n);
}

// Runs `op` until ~40ms of wall clock has elapsed (one warmup call first)
// and returns {iterations, seconds}.
template <typename Fn>
std::pair<uint64_t, double> Measure(Fn&& op) {
  op();  // Warmup: faults pages, builds kernel tables.
  WallTimer timer;
  uint64_t iters = 0;
  do {
    op();
    ++iters;
  } while (timer.Seconds() < 0.04);
  return {iters, timer.Seconds()};
}

// bytes/s for one (tier, kernel, size) cell, remembered for the ratio
// table and the acceptance self-check.
std::map<std::string, double> g_rates;

template <typename Fn>
void KernelRow(BenchReport& rep, const std::string& label, size_t bytes_per_op,
               Fn&& op) {
  const auto [iters, seconds] = Measure(op);
  const double s = seconds > 0 ? seconds : 1e-9;
  g_rates[label] = static_cast<double>(iters) * bytes_per_op / s;
  rep.ThroughputRow(label, iters, iters * bytes_per_op, seconds);
}

void RunKernelTiers(BenchReport& rep) {
  rep.BeginTable(
      "T3 — dispatched kernel throughput per ISA tier (64B-aligned buffers)",
      {"op/tier/size", "ops", "bytes", "ops/s", "bytes/s"});
  for (const GfKernels* k : AvailableKernels()) {
    for (size_t n : {size_t{4096}, size_t{65536}}) {
      BufferView src(MakeBuffer(n, 51));
      BufferView dst(MakeBuffer(n, 52));
      uint8_t* d = dst.MutableData();
      const std::string suffix =
          std::string("/") + k->name + "/" + std::to_string(n);
      KernelRow(rep, "xor" + suffix, n,
                [&] { k->xor_buf(d, src.data(), n); });
      KernelRow(rep, "muladd_gf8" + suffix, n,
                [&] { k->mul_add_8(d, src.data(), n, 0x53); });
      KernelRow(rep, "muladd_gf16" + suffix, n,
                [&] { k->mul_add_16(d, src.data(), n, 0x1053); });
    }
    // Fused 4-source row apply (the recovery-decode shape: m=4 survivors
    // folded into one reconstructed column per pass).
    const size_t n = 16384;
    std::vector<Bytes> store;
    std::vector<const uint8_t*> srcs;
    for (uint64_t s = 0; s < 4; ++s) {
      store.push_back(MakeBuffer(n, 60 + s));
      srcs.push_back(store.back().data());
    }
    BufferView dst(MakeBuffer(n, 59));
    uint8_t* d = dst.MutableData();
    const uint8_t c8[] = {0x53, 0xA7, 0x01, 0x39};
    const uint16_t c16[] = {0x1053, 0x8001, 0x0001, 0x7F39};
    const std::string suffix = std::string("/") + k->name + "/16384";
    KernelRow(rep, "rowapply4_gf8" + suffix, 4 * n,
              [&] { k->matrix_row_apply_8(d, srcs.data(), c8, 4, n); });
    KernelRow(rep, "rowapply4_gf16" + suffix, 4 * n,
              [&] { k->matrix_row_apply_16(d, srcs.data(), c16, 4, n); });
  }
}

template <typename F>
void EncodeDecodeRows(BenchReport& rep, const char* field,
                      const GfKernels* tier) {
  const uint32_t m = 4, k = 3;
  const size_t n = 16384;
  GroupCoder<F> coder(m, k);
  std::vector<Bytes> data;
  std::vector<const Bytes*> ptrs;
  for (uint32_t i = 0; i < m; ++i) data.push_back(MakeBuffer(n, 10 + i));
  for (const auto& d : data) ptrs.push_back(&d);
  const std::string suffix = std::string("/") + field + "/" + tier->name;
  KernelRow(rep, "encode_m4k3" + suffix, n * m, [&] {
    auto parity = coder.Encode(ptrs);
  });

  std::vector<Bytes> parity = coder.Encode(ptrs);
  const uint32_t erasures = 3;
  std::vector<std::pair<size_t, Bytes>> available;
  std::vector<size_t> missing;
  for (uint32_t i = 0; i < m; ++i) {
    if (i < erasures) {
      missing.push_back(i);
    } else {
      available.emplace_back(i, data[i]);
    }
  }
  for (uint32_t j = 0; j < k; ++j) available.emplace_back(m + j, parity[j]);
  KernelRow(rep, "decode_3of4" + suffix, n * erasures, [&] {
    auto decoded = coder.DecodeData(available, missing);
  });
}

void RunEncodeDecodeTiers(BenchReport& rep) {
  rep.BeginTable(
      "T3 — RS group encode/decode per ISA tier (m=4, k=3, 16 KiB members)",
      {"op/field/tier", "ops", "bytes", "ops/s", "bytes/s"});
  const GfKernels& startup = ActiveKernels();
  for (const GfKernels* k : AvailableKernels()) {
    ForceActiveKernelsForTesting(k);
    EncodeDecodeRows<GF256>(rep, "gf8", k);
    EncodeDecodeRows<GF65536>(rep, "gf16", k);
  }
  ForceActiveKernelsForTesting(nullptr);
  (void)startup;
}

void RunUpdateAblation(BenchReport& rep) {
  rep.BeginTable(
      "T3 — parity update: incremental delta vs full re-encode (m=4, k=2, "
      "16 KiB, active tier)",
      {"op", "ops", "bytes", "ops/s", "bytes/s"});
  const uint32_t m = 4, k = 2;
  const size_t n = 16384;
  {
    GroupCoder<GF256> coder(m, k);
    Bytes delta = MakeBuffer(n, 30);
    std::vector<Bytes> parity(k, Bytes(n, 0));
    KernelRow(rep, "delta_update_gf8", n * k, [&] {
      for (uint32_t j = 0; j < k; ++j) coder.ApplyDelta(1, delta, j,
                                                        &parity[j]);
    });
  }
  {
    GroupCoder<GF256> coder(m, k);
    std::vector<Bytes> data;
    std::vector<const Bytes*> ptrs;
    for (uint32_t i = 0; i < m; ++i) data.push_back(MakeBuffer(n, 40 + i));
    for (const auto& d : data) ptrs.push_back(&d);
    KernelRow(rep, "full_reencode_gf8", n * k, [&] {
      auto parity = coder.Encode(ptrs);
    });
  }
}

void RunMatrixInversion(BenchReport& rep) {
  rep.BeginTable("T3 — decode matrix inversion (GF(2^8), k=3 parity columns)",
                 {"m", "ops", "bytes", "ops/s", "bytes/s"});
  for (uint32_t m : {4u, 8u, 16u}) {
    GroupCoder<GF256> coder(m, 3);
    Matrix<GF256> a(m, m);
    for (uint32_t t = 0; t < m; ++t) {
      for (uint32_t i = 0; i < m; ++i) {
        if (t < 3) {
          a.Set(i, t, coder.Coefficient(i, t));
        } else {
          a.Set(i, t, i == t ? 1 : 0);
        }
      }
    }
    KernelRow(rep, "invert_m" + std::to_string(m), 0, [&] {
      auto inv = a.Inverted();
    });
  }
}

// Speedup summary (best SIMD tier vs word-wise floor vs scalar reference)
// and the acceptance self-check. Ratios are deterministic enough to quote
// but the gate only enforces the coarse 4x bar.
int RunSummary(BenchReport& rep) {
  const GfKernels* best = nullptr;
  for (const GfKernels* k : AvailableKernels()) best = k;  // Last is best.
  const bool simd = std::strcmp(best->name, "scalar") != 0 &&
                    std::strcmp(best->name, "wordwise") != 0;
  rep.BeginTable("T3 — 4 KiB speedups vs tiers",
                 {"kernel", "best tier", "best/scalar", "best/wordwise"});
  for (const char* op : {"xor", "muladd_gf8", "muladd_gf16"}) {
    const std::string key = std::string(op) + "/";
    const double b = g_rates[key + best->name + "/4096"];
    const double sc = g_rates[key + "scalar/4096"];
    const double ww = g_rates[key + "wordwise/4096"];
    rep.Row({op, best->name, Fmt(sc > 0 ? b / sc : 0, 1) + "x",
             Fmt(ww > 0 ? b / ww : 0, 1) + "x"});
  }
  std::puts("");
  if (!simd) {
    std::puts("shape check: no SIMD tier on this machine; 4x gate skipped.");
    return 0;
  }
  const double ratio = g_rates[std::string("muladd_gf8/") + best->name +
                               "/4096"] /
                       g_rates["muladd_gf8/wordwise/4096"];
  std::printf("shape check: GF(2^8) MulAdd @4KiB %s/wordwise = %.1fx "
              "(gate: >= 4x)\n", best->name, ratio);
  if (ratio < 4.0) {
    std::fprintf(stderr,
                 "FAIL: SIMD GF(2^8) MulAdd speedup %.2fx below the 4x "
                 "acceptance bar\n", ratio);
    return 1;
  }
  return 0;
}

int Run(BenchReport& rep) {
  std::printf("selected kernel tier: %s (override with LHRS_KERNEL_ISA)\n\n",
              ActiveKernels().name);
  RunKernelTiers(rep);
  RunEncodeDecodeTiers(rep);
  RunUpdateAblation(rep);
  RunMatrixInversion(rep);
  return RunSummary(rep);
}

}  // namespace
}  // namespace lhrs::bench

int main(int argc, char** argv) {
  lhrs::bench::BenchReport report("t3_gf_rs");
  const int check = lhrs::bench::Run(report);
  const int write = lhrs::bench::WriteReport(report.report(), argc, argv);
  return check != 0 ? check : write;
}
