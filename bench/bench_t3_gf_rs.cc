// Experiment T3 — Galois-field and Reed-Solomon kernel throughput
// (google-benchmark).
//
// Paper shapes to reproduce: the XOR fast path (parity column 0 /
// coefficient 1) beats general field multiply-add; GF(2^16)'s wider
// symbols trade table size for per-byte work vs GF(2^8); erasure decode
// costs roughly an encode plus a small matrix inversion; incremental
// delta updates beat full re-encodes.

#include <benchmark/benchmark.h>

#include "common/buffer.h"
#include "common/rng.h"
#include "gf/gf256.h"
#include "gf/gf65536.h"
#include "rs/coder.h"

namespace lhrs {
namespace {

Bytes MakeBuffer(size_t n, uint64_t seed) {
  Rng rng(seed);
  return rng.RandomBytes(n);
}

// Word-wise XOR kernel vs the pinned byte-at-a-time reference. The
// acceptance bar for the zero-copy storage engine: the word kernel at
// 4 KB must be >= 4x the byte baseline (both run over 64-byte-aligned
// Buffer slices, the layout every bucket store hands out).
void BM_XorBuffer_Word(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  BufferView src(MakeBuffer(n, 51));
  BufferView dst(MakeBuffer(n, 52));
  uint8_t* d = dst.MutableData();
  for (auto _ : state) {
    XorBuffer(d, src.data(), n);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_XorBuffer_Word)->Range(4096, 65536);

void BM_XorBuffer_ByteReference(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  BufferView src(MakeBuffer(n, 53));
  BufferView dst(MakeBuffer(n, 54));
  uint8_t* d = dst.MutableData();
  for (auto _ : state) {
    XorBufferByteReference(d, src.data(), n);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_XorBuffer_ByteReference)->Range(4096, 65536);

// Same comparison for the general multiply-add (row-table word kernel vs
// the byte-wise log/exp reference).
void BM_MulAdd_Word(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  BufferView src(MakeBuffer(n, 55));
  BufferView dst(MakeBuffer(n, 56));
  uint8_t* d = dst.MutableData();
  for (auto _ : state) {
    GF256::MulAddBuffer(d, src.data(), n, 0x53);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_MulAdd_Word)->Range(4096, 65536);

void BM_MulAdd_ByteReference(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  BufferView src(MakeBuffer(n, 57));
  BufferView dst(MakeBuffer(n, 58));
  uint8_t* d = dst.MutableData();
  for (auto _ : state) {
    GF256::MulAddBufferByteReference(d, src.data(), n, 0x53);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_MulAdd_ByteReference)->Range(4096, 65536);

template <typename F>
void BM_MulAddBuffer_Xor(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Bytes src = MakeBuffer(n, 1);
  Bytes dst = MakeBuffer(n, 2);
  for (auto _ : state) {
    F::MulAddBuffer(dst.data(), src.data(), n, 1);  // Coefficient 1 = XOR.
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK_TEMPLATE(BM_MulAddBuffer_Xor, GF256)->Range(4096, 65536);
BENCHMARK_TEMPLATE(BM_MulAddBuffer_Xor, GF65536)->Range(4096, 65536);

template <typename F>
void BM_MulAddBuffer_General(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Bytes src = MakeBuffer(n, 3);
  Bytes dst = MakeBuffer(n, 4);
  const typename F::Symbol coeff = 0x53;
  for (auto _ : state) {
    F::MulAddBuffer(dst.data(), src.data(), n, coeff);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK_TEMPLATE(BM_MulAddBuffer_General, GF256)->Range(4096, 65536);
BENCHMARK_TEMPLATE(BM_MulAddBuffer_General, GF65536)->Range(4096, 65536);

template <typename F>
void BM_GroupEncode(benchmark::State& state) {
  const uint32_t m = 4;
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  GroupCoder<F> coder(m, k);
  std::vector<Bytes> data;
  std::vector<const Bytes*> ptrs;
  for (uint32_t i = 0; i < m; ++i) data.push_back(MakeBuffer(n, 10 + i));
  for (const auto& d : data) ptrs.push_back(&d);
  for (auto _ : state) {
    auto parity = coder.Encode(ptrs);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n * m);
}
BENCHMARK_TEMPLATE(BM_GroupEncode, GF256)
    ->Args({1, 16384})
    ->Args({2, 16384})
    ->Args({3, 16384});
BENCHMARK_TEMPLATE(BM_GroupEncode, GF65536)
    ->Args({1, 16384})
    ->Args({2, 16384})
    ->Args({3, 16384});

template <typename F>
void BM_GroupDecode(benchmark::State& state) {
  const uint32_t m = 4;
  const uint32_t k = 3;
  const uint32_t erasures = static_cast<uint32_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  GroupCoder<F> coder(m, k);
  std::vector<Bytes> data;
  std::vector<const Bytes*> ptrs;
  for (uint32_t i = 0; i < m; ++i) data.push_back(MakeBuffer(n, 20 + i));
  for (const auto& d : data) ptrs.push_back(&d);
  std::vector<Bytes> parity = coder.Encode(ptrs);

  std::vector<std::pair<size_t, Bytes>> available;
  std::vector<size_t> missing;
  for (uint32_t i = 0; i < m; ++i) {
    if (i < erasures) {
      missing.push_back(i);
    } else {
      available.emplace_back(i, data[i]);
    }
  }
  for (uint32_t j = 0; j < k; ++j) available.emplace_back(m + j, parity[j]);

  for (auto _ : state) {
    auto decoded = coder.DecodeData(available, missing);
    benchmark::DoNotOptimize(&decoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n *
                          erasures);
}
BENCHMARK_TEMPLATE(BM_GroupDecode, GF256)
    ->Args({1, 16384})
    ->Args({2, 16384})
    ->Args({3, 16384});
BENCHMARK_TEMPLATE(BM_GroupDecode, GF65536)->Args({2, 16384});

/// Ablation: incremental delta maintenance vs full re-encode on update.
template <typename F>
void BM_DeltaUpdate(benchmark::State& state) {
  const uint32_t m = 4, k = 2;
  const size_t n = static_cast<size_t>(state.range(0));
  GroupCoder<F> coder(m, k);
  Bytes delta = MakeBuffer(n, 30);
  std::vector<Bytes> parity(k, Bytes(n, 0));
  for (auto _ : state) {
    for (uint32_t j = 0; j < k; ++j) {
      coder.ApplyDelta(1, delta, j, &parity[j]);
    }
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n * k);
}
BENCHMARK_TEMPLATE(BM_DeltaUpdate, GF256)->Arg(16384);
BENCHMARK_TEMPLATE(BM_DeltaUpdate, GF65536)->Arg(16384);

template <typename F>
void BM_FullReencodeUpdate(benchmark::State& state) {
  const uint32_t m = 4, k = 2;
  const size_t n = static_cast<size_t>(state.range(0));
  GroupCoder<F> coder(m, k);
  std::vector<Bytes> data;
  std::vector<const Bytes*> ptrs;
  for (uint32_t i = 0; i < m; ++i) data.push_back(MakeBuffer(n, 40 + i));
  for (const auto& d : data) ptrs.push_back(&d);
  for (auto _ : state) {
    auto parity = coder.Encode(ptrs);  // Re-reads all m members.
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n * k);
}
BENCHMARK_TEMPLATE(BM_FullReencodeUpdate, GF256)->Arg(16384);
BENCHMARK_TEMPLATE(BM_FullReencodeUpdate, GF65536)->Arg(16384);

void BM_MatrixInversion(benchmark::State& state) {
  const uint32_t m = static_cast<uint32_t>(state.range(0));
  GroupCoder<GF256> coder(m, 3);
  // Build a decode matrix: lose 3 data columns, use 3 parity columns.
  Matrix<GF256> a(m, m);
  for (uint32_t t = 0; t < m; ++t) {
    for (uint32_t i = 0; i < m; ++i) {
      if (t < 3) {
        a.Set(i, t, coder.Coefficient(i, t));
      } else {
        a.Set(i, t, i == t ? 1 : 0);
      }
    }
  }
  for (auto _ : state) {
    auto inv = a.Inverted();
    benchmark::DoNotOptimize(&inv);
  }
}
BENCHMARK(BM_MatrixInversion)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace lhrs

BENCHMARK_MAIN();
