// Experiment F3 — whole-file availability P vs file size M, per scheme.
//
// Paper shapes to reproduce: plain LH* collapses (p=0.99, M=100 -> P~37%,
// M=1000 -> ~0.004%); each +1 of k pushes the collapse out by orders of
// magnitude; LH*m sits between k=1 and k=2 grouping schemes. Closed forms
// are cross-checked against Monte-Carlo at two sizes.

#include <cstdio>

#include "analysis/availability_model.h"
#include "bench/bench_util.h"

namespace lhrs::bench {
namespace {

void Run(BenchReport& r) {
  const double p = 0.99;
  r.BeginTable("F3 — file availability P(M), per-bucket availability p=0.99",
               {"M", "LH* (k=0)", "LH*g k_g=4", "LH*s k_s=4", "LH*m",
                "LH*RS m=4 k=1", "LH*RS k=2", "LH*RS k=3"});
  for (uint32_t m_size : {1u, 8u, 32u, 100u, 256u, 1000u, 4096u}) {
    r.Row({std::to_string(m_size),
              FmtSci(PlainAvailability(m_size, p)),
              FmtSci(LhgAvailability(m_size, 4, std::max(1u, m_size / 4), p)),
              FmtSci(LhsAvailability(std::max(1u, m_size / 4), 4, p)),
              FmtSci(MirrorAvailability(m_size, p)),
              FmtSci(LhrsAvailability(m_size, 4, 1, p)),
              FmtSci(LhrsAvailability(m_size, 4, 2, p)),
              FmtSci(LhrsAvailability(m_size, 4, 3, p))});
  }

  std::puts("");
  r.BeginTable("F3b — Monte-Carlo cross-check (100k trials)",
               {"scheme", "M", "closed form", "Monte-Carlo"});
  Rng rng(123);
  {
    const uint32_t M = 100;
    const double mc = MonteCarloAvailability(
        M, p, 100000, rng, [](const std::vector<bool>& up) {
          for (bool u : up) {
            if (!u) return false;
          }
          return true;
        });
    r.Row({"LH*", std::to_string(M), FmtSci(PlainAvailability(M, p)),
           FmtSci(mc)});
  }
  {
    const uint32_t M = 128, m = 4, k = 2;
    const uint32_t groups = M / m;
    const double mc = MonteCarloAvailability(
        groups * (m + k), p, 100000, rng,
        [&](const std::vector<bool>& up) {
          for (uint32_t g = 0; g < groups; ++g) {
            uint32_t failures = 0;
            for (uint32_t i = 0; i < m + k; ++i) {
              if (!up[g * (m + k) + i]) ++failures;
            }
            if (failures > k) return false;
          }
          return true;
        });
    r.Row({"LH*RS m=4 k=2", std::to_string(M),
           FmtSci(LhrsAvailability(M, m, k, p)), FmtSci(mc)});
  }

  std::puts("");
  r.BeginTable("F3c — scalable availability holds P flat (thresholds 64, 512)",
               {"M", "fixed k=1", "scalable k", "k of newest group"});
  auto k_for_group = [](uint32_t group) {
    // Group g was created when the file had ~4g buckets.
    const uint32_t buckets_at_creation = 4 * group;
    uint32_t k = 1;
    if (buckets_at_creation >= 64) ++k;
    if (buckets_at_creation >= 512) ++k;
    return k;
  };
  for (uint32_t m_size : {16u, 64u, 256u, 1024u, 4096u}) {
    r.Row({std::to_string(m_size),
           FmtSci(LhrsAvailability(m_size, 4, 1, p)),
           FmtSci(LhrsScalableAvailability(m_size, 4, k_for_group, p)),
           std::to_string(k_for_group((m_size - 1) / 4))});
  }
}

}  // namespace
}  // namespace lhrs::bench

int main(int argc, char** argv) {
  lhrs::bench::BenchReport report("f3_availability");
  report.report().AddParam("p", 0.99);
  report.report().AddParam("mc_trials", int64_t{100000});
  lhrs::bench::Run(report);
  return lhrs::bench::WriteReport(report.report(), argc, argv);
}
