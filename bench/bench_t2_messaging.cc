// Experiment T2 — per-operation messaging costs in normal (failure-free)
// mode, across all schemes, measured with converged client images.
//
// Paper shapes to reproduce: LH*RS key search == LH* key search (parity
// untouched on reads); LH*RS insert = LH* insert + k parity messages;
// LH*g insert adds exactly one parity message; LH*m doubles writes; LH*s
// pays k fetches per search — the read penalty of striping.

#include <cstdio>
#include <functional>

#include "analysis/cost_model.h"
#include "baselines/lhg/lhg_file.h"
#include "baselines/lhm/lhm_file.h"
#include "baselines/lhs/lhs_file.h"
#include "bench/bench_util.h"
#include "lhrs/lhrs_file.h"

namespace lhrs::bench {
namespace {

constexpr int kWarmupOps = 1500;
constexpr int kMeasuredOps = 500;
constexpr size_t kValueBytes = 64;

struct Measured {
  double search = 0, insert = 0, update = 0, del = 0;
};

/// Runs the standard workload against any facade exposing the common op
/// signatures and measures messages per op.
template <typename File>
Measured Measure(File& file, Network& net, uint64_t seed) {
  Rng rng(seed);
  std::vector<Key> keys;
  for (int i = 0; i < kWarmupOps; ++i) {
    const Key k = rng.Next64();
    if (file.Insert(k, rng.RandomBytes(kValueBytes)).ok()) keys.push_back(k);
  }
  Measured out;
  uint64_t before = net.stats().total_messages();
  for (int i = 0; i < kMeasuredOps; ++i) {
    (void)file.Search(keys[i]);
  }
  out.search =
      static_cast<double>(net.stats().total_messages() - before) /
      kMeasuredOps;

  before = net.stats().total_messages();
  std::vector<Key> fresh;
  for (int i = 0; i < kMeasuredOps; ++i) {
    const Key k = rng.Next64();
    fresh.push_back(k);
    (void)file.Insert(k, rng.RandomBytes(kValueBytes));
  }
  out.insert =
      static_cast<double>(net.stats().total_messages() - before) /
      kMeasuredOps;

  before = net.stats().total_messages();
  for (int i = 0; i < kMeasuredOps; ++i) {
    (void)file.Update(fresh[i], rng.RandomBytes(kValueBytes));
  }
  out.update =
      static_cast<double>(net.stats().total_messages() - before) /
      kMeasuredOps;

  before = net.stats().total_messages();
  for (int i = 0; i < kMeasuredOps; ++i) {
    (void)file.Delete(fresh[i]);
  }
  out.del = static_cast<double>(net.stats().total_messages() - before) /
            kMeasuredOps;
  return out;
}

void Report(BenchReport& r, const std::string& scheme,
            const std::string& params, const Measured& m, double model_search,
            double model_insert) {
  r.Row({scheme, params, Fmt(m.search), Fmt(model_search), Fmt(m.insert),
         Fmt(model_insert), Fmt(m.update), Fmt(m.del)});
}

void Run(BenchReport& r) {
  r.BeginTable(
      "T2 — messages per operation, failure-free mode (request+reply "
      "counted; splits amortised in)",
      {"scheme", "params", "search", "model", "insert", "model", "update",
       "delete"});

  {
    LhStarFile::Options opts;
    opts.file.bucket_capacity = 50;
    LhStarFile file(opts);
    const Measured m = Measure(file, file.network(), 11);
    Report(r, "LH* (k=0)", "-", m, CostModel::kLhStarSearch,
           CostModel::kLhStarInsert);
  }
  for (uint32_t k : {1u, 2u, 3u}) {
    LhrsFile::Options opts;
    opts.file.bucket_capacity = 50;
    opts.group_size = 4;
    opts.policy.base_k = k;
    LhrsFile file(opts);
    const Measured m = Measure(file, file.network(), 12 + k);
    Report(r, "LH*RS", "m=4 k=" + std::to_string(k), m, CostModel::kLhrsSearch,
           CostModel::LhrsInsert(k));
  }
  {
    lhg::LhgFile::Options opts;
    opts.file.bucket_capacity = 50;
    opts.group_size = 3;
    lhg::LhgFile file(opts);
    const Measured m = Measure(file, file.network(), 16);
    Report(r, "LH*g", "k=3", m, CostModel::kLhStarSearch, CostModel::kLhgInsert);
  }
  {
    lhg::LhgFile::Options opts;
    opts.file.bucket_capacity = 50;
    opts.group_size = 3;
    opts.reassign_group_keys_on_split = true;
    lhg::LhgFile file(opts);
    const Measured m = Measure(file, file.network(), 16);
    Report(r, "LH*g1", "k=3 (4.4)", m, CostModel::kLhStarSearch,
           CostModel::kLhgInsert);
  }
  {
    lhm::LhmFile::Options opts;
    opts.file.bucket_capacity = 50;
    lhm::LhmFile file(opts);
    const Measured m = Measure(file, file.network(), 17);
    Report(r, "LH*m", "mirror", m, CostModel::kLhStarSearch,
           CostModel::kLhmInsert);
  }
  for (uint32_t k : {2u, 4u}) {
    lhs::LhsFile::Options opts;
    opts.file.bucket_capacity = 50;
    opts.stripe_count = k;
    lhs::LhsFile file(opts);
    const Measured m = Measure(file, file.network(), 18 + k);
    Report(r, "LH*s", "k=" + std::to_string(k), m, CostModel::LhsSearch(k),
           CostModel::LhsInsert(k));
  }
}

}  // namespace
}  // namespace lhrs::bench

int main(int argc, char** argv) {
  lhrs::bench::BenchReport report("t2_messaging");
  report.report().AddParam("warmup_ops", int64_t{1500});
  report.report().AddParam("measured_ops", int64_t{500});
  lhrs::bench::Run(report);
  return lhrs::bench::WriteReport(report.report(), argc, argv);
}
