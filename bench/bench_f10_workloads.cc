// Experiment F10 — production-shaped workloads over the session layer.
//
// Four scenarios, all on LH*RS (m=4, k=1) through the scheme-agnostic
// facade:
//
//  - Mixed open-loop traffic: seeded uniform vs Zipfian (theta=0.99)
//    read/RMW/insert streams through the PipelinedRunner, with per-bucket
//    ops counters and queueing-depth histograms exposing the hot-bucket
//    skew the Zipfian stream induces.
//  - Bulk load: the batched insert path (InsertBatchMsg, one message per
//    target bucket per sub-batch, parity deltas group-committed) against
//    the per-record baseline — the messages/record gap is the point.
//  - Parallel range scan: P disjoint partitions with client-side merge,
//    over multicast and the unicast fallback alike.
//  - File shrink: deletions drive the load under the merge threshold while
//    ops are still in flight; the coordinator merges tail buckets back.
//
// Everything runs on the deterministic engine, so every table is
// byte-identical across runs: cost columns gate via
// tools/check_bench_regression.py, and the "(sim)" throughput columns are
// deterministic too (label-matched, lower-is-regression in that checker).
//
// The binary self-checks each scenario's correctness claim (exact oracle
// contents, zero lost records, skew ordering, merge actually happening)
// and exits non-zero when one breaks.

#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "bench/bench_util.h"
#include "lhrs/lhrs_file.h"
#include "sdds/session.h"
#include "workload/bucket_load.h"
#include "workload/bulk_load.h"
#include "workload/generator.h"
#include "workload/scan_driver.h"
#include "workload/shrink.h"

namespace lhrs::bench {
namespace {

using workload::BulkLoad;
using workload::BulkLoadOptions;
using workload::GeneratorOptions;
using workload::ParallelScan;
using workload::ParallelScanOptions;
using workload::ShrinkByDeletion;
using workload::ShrinkOptions;
using workload::WorkloadGenerator;

constexpr uint64_t kSeed = 2024;

std::unique_ptr<LhrsFile> MakeFile(size_t bucket_capacity,
                                   bool enable_merge = false,
                                   bool multicast = true) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = bucket_capacity;
  opts.file.enable_merge = enable_merge;
  opts.net.multicast_available = multicast;
  opts.group_size = 4;
  opts.policy.base_k = 1;
  return std::make_unique<LhrsFile>(opts);
}

std::vector<WireRecord> MakeRecords(const std::vector<Key>& keys,
                                    size_t value_bytes, uint64_t seed) {
  Rng rng(seed);
  std::vector<WireRecord> records;
  records.reserve(keys.size());
  for (Key k : keys) {
    records.push_back(WireRecord{k, 0, rng.RandomBytes(value_bytes)});
  }
  return records;
}

// --- Scenario 1: mixed uniform vs Zipfian streams -------------------------

bool RunMixed(BenchReport& r) {
  bool ok = true;
  struct MixedCell {
    sdds::RunnerReport report;
    double msgs_per_op = 0.0;
    double skew = 0.0;
    std::vector<workload::BucketLoad> buckets;
  };
  std::map<const char*, MixedCell> cells;

  for (const char* dist : {"uniform", "zipfian"}) {
    GeneratorOptions gen_opts;
    gen_opts.seed = kSeed;
    gen_opts.sessions = 4;
    gen_opts.ops_per_session = 500;
    gen_opts.keyspace = 512;
    gen_opts.dist = dist[0] == 'z' ? GeneratorOptions::KeyDist::kZipfian
                                   : GeneratorOptions::KeyDist::kUniform;
    WorkloadGenerator gen(gen_opts);

    auto file = MakeFile(/*bucket_capacity=*/16);
    telemetry::TelemetryConfig tcfg;
    tcfg.trace_messages = false;
    file->network().EnableTelemetry(tcfg);

    const auto load = BulkLoad(
        *file, MakeRecords(gen.preload_keys(), gen_opts.value_bytes,
                           kSeed + 7),
        BulkLoadOptions{});
    if (load.failed != 0 || load.applied != gen.preload_keys().size()) {
      std::fprintf(stderr, "FAIL: %s preload lost records\n", dist);
      ok = false;
    }

    MixedCell cell;
    const uint64_t msgs_before = file->network().stats().total_messages();
    sdds::PipelinedRunner runner(
        *file, sdds::RunnerOptions{gen_opts.sessions, 4, 0});
    cell.report = runner.Run(
        [&](size_t session) { return gen.Next(session); });
    // Settle trailing parity deltas before counting messages and checking
    // invariants (the runner returns at the last op completion).
    file->network().RunUntilIdle();
    cell.msgs_per_op =
        static_cast<double>(file->network().stats().total_messages() -
                            msgs_before) /
        static_cast<double>(cell.report.completed);
    cell.buckets = workload::SnapshotBucketLoad(*file);
    cell.skew = workload::SkewRatio(cell.buckets);

    const uint64_t expected = gen_opts.sessions * gen_opts.ops_per_session;
    if (cell.report.completed != expected || cell.report.failures != 0) {
      std::fprintf(stderr, "FAIL: %s stream lost ops (%llu/%llu, %llu bad)\n",
                   dist,
                   static_cast<unsigned long long>(cell.report.completed),
                   static_cast<unsigned long long>(expected),
                   static_cast<unsigned long long>(cell.report.failures));
      ok = false;
    }
    if (!file->VerifyParityInvariants().ok()) {
      std::fprintf(stderr, "FAIL: %s stream broke parity\n", dist);
      ok = false;
    }
    cells[dist] = std::move(cell);
  }

  r.BeginTable(
      "F10 — mixed open-loop streams (LH*RS m=4 k=1, b=16; 4 sessions x "
      "500 ops, W=4, 512-key preload, 70/20/10 search/RMW/insert)",
      {"workload", "ops", "sim us/op", "ops/s (sim)", "p50 us", "p95 us",
       "p99 us", "msgs/op", "failures", "bucket skew"});
  for (const char* dist : {"uniform", "zipfian"}) {
    const MixedCell& cell = cells[dist];
    const double us_per_op =
        static_cast<double>(cell.report.elapsed_us()) /
        static_cast<double>(cell.report.completed);
    r.Row({dist, std::to_string(cell.report.completed), Fmt(us_per_op),
           Fmt(cell.report.OpsPerSimSecond()),
           std::to_string(cell.report.LatencyPercentileUs(50)),
           std::to_string(cell.report.LatencyPercentileUs(95)),
           std::to_string(cell.report.LatencyPercentileUs(99)),
           Fmt(cell.msgs_per_op, 3),
           std::to_string(cell.report.failures), Fmt(cell.skew)});
  }
  std::puts("");

  // The per-bucket queueing picture behind the skew column: ops landed on
  // each bucket plus the pending-delivery depth the bucket saw at each op
  // arrival (p50/p95/max of the bucket.queue_depth{bucket=N} histogram).
  r.BeginTable(
      "F10 — per-bucket load and queueing depth (same runs; buckets with "
      "ops only)",
      {"workload", "bucket", "ops", "qdepth p50", "qdepth p95",
       "qdepth max"});
  for (const char* dist : {"uniform", "zipfian"}) {
    for (const workload::BucketLoad& b : cells[dist].buckets) {
      if (b.ops == 0) continue;
      r.Row({dist, std::to_string(b.bucket), std::to_string(b.ops),
             std::to_string(b.queue_depth_p50),
             std::to_string(b.queue_depth_p95),
             std::to_string(b.queue_depth_max)});
    }
  }
  std::puts("");

  // Shape check: the Zipfian stream must concentrate visibly harder on
  // its hottest bucket than the uniform stream does.
  if (cells["zipfian"].skew < cells["uniform"].skew * 1.5) {
    std::fprintf(stderr, "FAIL: zipfian skew %.2f not above uniform %.2f\n",
                 cells["zipfian"].skew, cells["uniform"].skew);
    ok = false;
  }
  return ok;
}

// --- Scenario 2: bulk load, batched vs per-record -------------------------

bool RunBulkLoad(BenchReport& r) {
  bool ok = true;
  const std::vector<Key> keys = RandomKeys(4000, kSeed + 11);
  const std::vector<WireRecord> records = MakeRecords(keys, 32, kSeed + 13);

  r.BeginTable(
      "F10 — bulk load of 4000 records (LH*RS m=4 k=1, b=32; batches "
      "group-commit parity deltas)",
      {"mode", "records", "batches", "sim ms", "records/s (sim)",
       "msgs/record", "failures"});

  double per_record_msgs = 0.0;
  double batched_msgs = 0.0;
  for (const char* mode : {"per-record", "batched b=64", "batched b=256"}) {
    auto file = MakeFile(/*bucket_capacity=*/32);
    const uint64_t msgs_before = file->network().stats().total_messages();
    uint64_t batches = 0;
    uint64_t failures = 0;
    const SimTime start_us = file->network().now();
    if (mode[0] == 'p') {
      for (const WireRecord& rec : records) {
        if (!file->Insert(rec.key, rec.value.ToBytes()).ok()) ++failures;
      }
      batches = records.size();
    } else {
      BulkLoadOptions opts;
      opts.batch_size = mode[10] == '6' ? 64 : 256;
      opts.window = 2;
      const auto report = BulkLoad(*file, records, opts);
      batches = report.batches;
      failures = report.failed;
      if (report.applied != records.size()) {
        std::fprintf(stderr, "FAIL: %s applied %llu of %zu\n", mode,
                     static_cast<unsigned long long>(report.applied),
                     records.size());
        ok = false;
      }
    }
    const SimTime elapsed = file->network().now() - start_us;
    const double msgs_per_record =
        static_cast<double>(file->network().stats().total_messages() -
                            msgs_before) /
        static_cast<double>(records.size());
    if (mode[0] == 'p') {
      per_record_msgs = msgs_per_record;
    } else {
      batched_msgs = msgs_per_record;
    }
    r.Row({mode, std::to_string(records.size()), std::to_string(batches),
           Fmt(static_cast<double>(elapsed) / 1e3),
           Fmt(static_cast<double>(records.size()) * 1e6 /
               static_cast<double>(elapsed)),
           Fmt(msgs_per_record, 3), std::to_string(failures)});

    if (failures != 0 ||
        file->GetStorageStats().record_count != records.size()) {
      std::fprintf(stderr, "FAIL: %s lost records\n", mode);
      ok = false;
    }
    if (!file->VerifyParityInvariants().ok()) {
      std::fprintf(stderr, "FAIL: %s broke parity\n", mode);
      ok = false;
    }
    // Contents oracle: a full scan returns exactly the loaded records.
    auto scanned = file->Scan();
    if (!scanned.ok() || scanned->size() != records.size()) {
      std::fprintf(stderr, "FAIL: %s scan disagrees with load\n", mode);
      ok = false;
    }
  }
  std::puts("");

  // Shape check: batching must beat the per-record message bill.
  if (batched_msgs >= per_record_msgs) {
    std::fprintf(stderr, "FAIL: batched %.3f msgs/record >= per-record %.3f\n",
                 batched_msgs, per_record_msgs);
    ok = false;
  }
  return ok;
}

// --- Scenario 3: parallel range scan --------------------------------------

bool RunParallelScan(BenchReport& r) {
  bool ok = true;
  const std::vector<Key> keys = RandomKeys(2000, kSeed + 17);
  const std::vector<WireRecord> records = MakeRecords(keys, 32, kSeed + 19);

  r.BeginTable(
      "F10 — parallel range scan with client-side merge (LH*RS m=4 k=1, "
      "b=16, 2000 records; full key range)",
      {"delivery", "partitions", "records", "sim ms", "msgs"});
  for (const bool multicast : {true, false}) {
    for (const size_t partitions : {size_t{1}, size_t{2}, size_t{4},
                                    size_t{8}}) {
      if (!multicast && partitions != 4) continue;  // One fallback point.
      auto file = MakeFile(/*bucket_capacity=*/16, /*enable_merge=*/false,
                           multicast);
      const auto load = BulkLoad(*file, records, BulkLoadOptions{});
      if (load.applied != records.size()) {
        std::fprintf(stderr, "FAIL: scan preload lost records\n");
        ok = false;
      }
      const uint64_t msgs_before = file->network().stats().total_messages();
      ParallelScanOptions opts;
      opts.partitions = partitions;
      auto result = ParallelScan(*file, opts);
      if (!result.ok()) {
        std::fprintf(stderr, "FAIL: parallel scan errored: %s\n",
                     result.status().ToString().c_str());
        ok = false;
        continue;
      }
      const uint64_t msgs =
          file->network().stats().total_messages() - msgs_before;
      r.Row({multicast ? "multicast" : "unicast", std::to_string(partitions),
             std::to_string(result->records.size()),
             Fmt(static_cast<double>(result->elapsed_us) / 1e3),
             std::to_string(msgs)});

      // Exactness: every loaded record, globally sorted, no duplicates.
      if (result->records.size() != records.size()) {
        std::fprintf(stderr, "FAIL: P=%zu returned %zu of %zu records\n",
                     partitions, result->records.size(), records.size());
        ok = false;
      }
      for (size_t i = 1; i < result->records.size(); ++i) {
        if (result->records[i - 1].key >= result->records[i].key) {
          std::fprintf(stderr, "FAIL: P=%zu merge not sorted at %zu\n",
                       partitions, i);
          ok = false;
          break;
        }
      }
    }
  }
  std::puts("");
  return ok;
}

// --- Scenario 4: file shrink under load -----------------------------------

bool RunShrink(BenchReport& r) {
  bool ok = true;
  const std::vector<Key> keys = RandomKeys(1500, kSeed + 23);
  const std::vector<WireRecord> records = MakeRecords(keys, 32, kSeed + 29);

  auto file = MakeFile(/*bucket_capacity=*/16, /*enable_merge=*/true);
  const auto load = BulkLoad(*file, records, BulkLoadOptions{});
  if (load.applied != records.size()) {
    std::fprintf(stderr, "FAIL: shrink preload lost records\n");
    ok = false;
  }
  const BucketNo grown = file->bucket_count();

  ShrinkOptions opts;
  opts.delete_fraction = 0.75;
  opts.seed = kSeed + 31;
  const auto shrink = ShrinkByDeletion(*file, keys, opts);

  r.BeginTable(
      "F10 — file shrink by merge under load (LH*RS m=4 k=1, b=16, merge "
      "threshold 0.4; delete 75% of 1500 records, 2 sessions x W=4)",
      {"phase", "buckets", "records", "merges", "sim ms"});
  r.Row({"grown", std::to_string(grown), std::to_string(records.size()),
         "0", Fmt(static_cast<double>(load.elapsed_us()) / 1e3)});
  r.Row({"shrunk", std::to_string(shrink.buckets_after),
         std::to_string(records.size() - shrink.deletes),
         std::to_string(shrink.merges),
         Fmt(static_cast<double>(shrink.runner.elapsed_us()) / 1e3)});
  std::puts("");

  if (shrink.runner.failures != 0) {
    std::fprintf(stderr, "FAIL: shrink deletes failed\n");
    ok = false;
  }
  if (shrink.merges == 0 || shrink.buckets_after >= shrink.buckets_before) {
    std::fprintf(stderr, "FAIL: no merge happened (buckets %u -> %u)\n",
                 shrink.buckets_before, shrink.buckets_after);
    ok = false;
  }
  if (!file->VerifyParityInvariants().ok()) {
    std::fprintf(stderr, "FAIL: shrink broke parity\n");
    ok = false;
  }
  // Survivor oracle: exactly the undeleted records remain.
  std::map<Key, bool> deleted;
  for (Key k : shrink.deleted_keys) deleted[k] = true;
  auto scanned = file->Scan();
  if (!scanned.ok()) {
    std::fprintf(stderr, "FAIL: post-shrink scan errored\n");
    ok = false;
  } else {
    size_t expected = 0;
    for (Key k : keys) {
      if (!deleted.contains(k)) ++expected;
    }
    if (scanned->size() != expected) {
      std::fprintf(stderr, "FAIL: post-shrink scan %zu != %zu survivors\n",
                   scanned->size(), expected);
      ok = false;
    }
    for (const WireRecord& rec : *scanned) {
      if (deleted.contains(rec.key)) {
        std::fprintf(stderr, "FAIL: deleted key survived shrink\n");
        ok = false;
        break;
      }
    }
  }
  return ok;
}

bool Run(BenchReport& r) {
  bool ok = RunMixed(r);
  ok = RunBulkLoad(r) && ok;
  ok = RunParallelScan(r) && ok;
  ok = RunShrink(r) && ok;
  std::puts(
      "shape check: zipfian skews harder than uniform; batching beats the "
      "per-record message bill; parallel scans return the exact sorted "
      "contents; deletions merge buckets back with parity intact.");
  return ok;
}

}  // namespace
}  // namespace lhrs::bench

int main(int argc, char** argv) {
  lhrs::bench::BenchReport report("f10_workloads");
  report.report().AddParam("seed", int64_t{lhrs::bench::kSeed});
  report.report().AddParam("scheme", "LH*RS m=4 k=1");
  const bool ok = lhrs::bench::Run(report);
  const int write_rc = lhrs::bench::WriteReport(report.report(), argc, argv);
  return ok ? write_rc : 1;
}
